package arb

import (
	"math"
	"testing"

	"swizzleqos/internal/noc"
)

func TestPVCStampsLikeOriginalVC(t *testing.T) {
	a := NewPVC(2, []noc.VTime{100, 50}, 10)
	p := gbPacket(0, 8)
	a.PacketArrived(10, p)
	if p.Stamp != 110 {
		t.Fatalf("stamp = %d, want 110", p.Stamp)
	}
	q := gbPacket(0, 8)
	a.PacketArrived(11, q)
	if q.Stamp != 210 {
		t.Fatalf("second stamp = %d, want 210", q.Stamp)
	}
}

func TestPVCPreemptsOnStampGap(t *testing.T) {
	a := NewPVC(2, []noc.VTime{800, 20}, 50)
	holder := gbPacket(0, 8)
	holder.Stamp = 1000
	inflight := Request{Input: 0, Class: noc.GuaranteedBandwidth, Packet: holder}

	// Challenger well ahead of the holder: preempt.
	fast := gbPacket(1, 8)
	fast.Stamp = 100
	reqs := []Request{{Input: 1, Class: noc.GuaranteedBandwidth, Packet: fast}}
	if w := a.ShouldPreempt(0, inflight, reqs); w != 0 {
		t.Fatalf("ShouldPreempt = %d, want 0", w)
	}
	if a.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", a.Preemptions)
	}

	// Challenger within the threshold: let the holder finish.
	near := gbPacket(1, 8)
	near.Stamp = 960
	reqs = []Request{{Input: 1, Class: noc.GuaranteedBandwidth, Packet: near}}
	if w := a.ShouldPreempt(0, inflight, reqs); w != -1 {
		t.Fatalf("near-stamp challenger preempted (gap 40 < threshold 50)")
	}
}

func TestPVCNeverPreemptsForUnreserved(t *testing.T) {
	a := NewPVC(2, []noc.VTime{0, 20}, 10)
	holder := gbPacket(1, 8)
	holder.Stamp = 50
	inflight := Request{Input: 1, Class: noc.GuaranteedBandwidth, Packet: holder}
	unreserved := gbPacket(0, 8)
	unreserved.Stamp = math.MaxUint64
	reqs := []Request{{Input: 0, Class: noc.GuaranteedBandwidth, Packet: unreserved}}
	if w := a.ShouldPreempt(0, inflight, reqs); w != -1 {
		t.Fatal("unreserved challenger preempted a stamped holder")
	}
}

func TestPVCPreemptsUnreservedHolder(t *testing.T) {
	a := NewPVC(2, []noc.VTime{0, 20}, 10)
	holder := gbPacket(0, 8)
	holder.Stamp = math.MaxUint64
	inflight := Request{Input: 0, Class: noc.GuaranteedBandwidth, Packet: holder}
	stamped := gbPacket(1, 8)
	stamped.Stamp = 40
	reqs := []Request{{Input: 1, Class: noc.GuaranteedBandwidth, Packet: stamped}}
	if w := a.ShouldPreempt(0, inflight, reqs); w != 0 {
		t.Fatal("stamped challenger should preempt an unreserved holder")
	}
}

func TestPVCPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPVC(3, []noc.VTime{1}, 0)
}
