package arb

import (
	"fmt"
	"math"

	"swizzleqos/internal/noc"
)

// Preemptor is implemented by arbiters that may abort an in-flight packet
// in favour of a waiting one. The switch consults it once per cycle for a
// busy output (when preemption is enabled); a preempted packet is NACKed
// back to the head of its input queue and retransmitted from scratch,
// wasting the flits already sent.
type Preemptor interface {
	// ShouldPreempt returns the index into reqs of a request that must
	// preempt the in-flight packet, or -1 to let it finish.
	ShouldPreempt(now noc.Cycle, inflight Request, reqs []Request) int
}

// PVC is a simplified Preemptive Virtual Clock [7] (Grot, Keckler, Mutlu —
// MICRO 2009), the flexible-but-costly alternative the paper positions
// SSVC against. Flows carry exact per-packet Virtual Clock stamps (as in
// the original algorithm); instead of coarse single-cycle comparison, PVC
// lets a sufficiently higher-priority waiting packet preempt the packet
// occupying the channel. Preemption keeps low-rate flows' latency down
// without per-flow buffering, but every preemption discards the flits
// already transmitted and triggers a retransmission — bandwidth the
// switch has to resupply.
type PVC struct {
	vticks []noc.VTime
	aux    []noc.VTime
	state  *LRGState
	// threshold is the stamp gap (cycles of virtual time) a waiting
	// packet needs over the in-flight one to justify killing it.
	threshold noc.VTime
	// Preemptions counts aborts requested by this arbiter.
	Preemptions uint64
}

// NewPVC returns a PVC arbiter for one output of a radix-n switch.
// vticks[i] is input i's Vtick in cycles (0 = unreserved, always lowest
// priority); threshold is the minimum stamp advantage for preemption —
// small thresholds preempt aggressively, large ones converge to OrigVC.
func NewPVC(n int, vticks []noc.VTime, threshold noc.VTime) *PVC {
	if len(vticks) != n {
		panic(fmt.Sprintf("arb: PVC needs %d vticks, got %d", n, len(vticks)))
	}
	return &PVC{
		vticks:    append([]noc.VTime(nil), vticks...),
		aux:       make([]noc.VTime, n),
		state:     NewLRGState(n),
		threshold: threshold,
	}
}

// PacketArrived implements ArrivalObserver: exact Virtual Clock stamping.
func (a *PVC) PacketArrived(now noc.Cycle, pkt *noc.Packet) {
	i := pkt.Src
	if a.vticks[i] == 0 {
		pkt.Stamp = math.MaxUint64
		return
	}
	// Step 1 reads the real-time clock into the virtual domain.
	if nv := noc.VTimeOfCycle(now); nv > a.aux[i] {
		a.aux[i] = nv
	}
	a.aux[i] += a.vticks[i]
	pkt.Stamp = a.aux[i]
}

// Arbitrate implements Arbiter: smallest stamp wins, LRG breaks ties.
//
//ssvc:hotpath
func (a *PVC) Arbitrate(now noc.Cycle, reqs []Request) int {
	best := -1
	bestStamp := noc.VTime(math.MaxUint64)
	bestRank := a.state.Size()
	for i, r := range reqs {
		s := r.Packet.Stamp
		rk := a.state.Rank(r.Input)
		if best == -1 || s < bestStamp || (s == bestStamp && rk < bestRank) {
			best, bestStamp, bestRank = i, s, rk
		}
	}
	return best
}

// Granted implements Arbiter.
func (a *PVC) Granted(now noc.Cycle, req Request) { a.state.Grant(req.Input) }

// Tick implements Arbiter.
func (a *PVC) Tick(now noc.Cycle) {}

// ShouldPreempt implements Preemptor: the best waiting stamp preempts the
// in-flight packet when it leads by more than the threshold. A preempted
// packet keeps its stamp, so it re-enters arbitration at its original
// priority.
func (a *PVC) ShouldPreempt(now noc.Cycle, inflight Request, reqs []Request) int {
	w := a.Arbitrate(now, reqs)
	if w < 0 {
		return -1
	}
	challenger := reqs[w].Packet.Stamp
	holder := inflight.Packet.Stamp
	if challenger == math.MaxUint64 {
		return -1
	}
	if holder == math.MaxUint64 {
		a.Preemptions++
		return w
	}
	if noc.SatAdd(challenger, a.threshold) < holder {
		a.Preemptions++
		return w
	}
	return -1
}

var (
	_ Arbiter         = (*PVC)(nil)
	_ ArrivalObserver = (*PVC)(nil)
	_ Preemptor       = (*PVC)(nil)
)
