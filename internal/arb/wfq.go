package arb

import (
	"fmt"
	"math"

	"swizzleqos/internal/noc"
)

// WFQ is a weighted fair queueing arbiter (§2.2): it emulates bit-by-bit
// round robin by computing, for every arriving packet, the virtual finish
// time it would have under the fluid model, and serving packets in
// increasing finish-time order. The paper notes the O(N) comparator cost
// that makes WFQ unattractive for single-cycle switch arbitration; it is
// included as a scheduling-quality reference.
type WFQ struct {
	weights []float64
	finish  []float64 // last assigned finish time per input
	vtime   float64   // system virtual time
	active  int       // number of backlogged inputs observed last cycle
	stamps  map[*noc.Packet]float64
	state   *LRGState
}

// NewWFQ returns a WFQ arbiter; weights[i] is input i's bandwidth share
// (any positive unit, typically the reserved fraction).
func NewWFQ(weights []float64) *WFQ {
	if len(weights) == 0 {
		panic("arb: WFQ needs at least one weight")
	}
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("arb: WFQ weight[%d]=%g must be positive and finite", i, w))
		}
	}
	return &WFQ{
		weights: append([]float64(nil), weights...),
		finish:  make([]float64, len(weights)),
		stamps:  make(map[*noc.Packet]float64),
		state:   NewLRGState(len(weights)),
	}
}

// PacketArrived implements ArrivalObserver: the packet's virtual finish
// time is fixed at arrival.
func (a *WFQ) PacketArrived(now noc.Cycle, pkt *noc.Packet) {
	i := pkt.Src
	start := a.finish[i]
	if a.vtime > start {
		start = a.vtime
	}
	f := start + float64(pkt.Length)/a.weights[i]
	a.finish[i] = f
	a.stamps[pkt] = f
}

// Arbitrate implements Arbiter: minimum virtual finish time wins, LRG
// breaks ties.
//
//ssvc:hotpath
func (a *WFQ) Arbitrate(now noc.Cycle, reqs []Request) int {
	a.active = len(reqs)
	best := -1
	bestF := math.Inf(1)
	bestRank := a.state.Size()
	for i, r := range reqs {
		f, ok := a.stamps[r.Packet]
		if !ok {
			// Packet never observed (e.g. injected before the arbiter
			// was attached); treat as arriving now.
			a.PacketArrived(now, r.Packet)
			f = a.stamps[r.Packet]
		}
		rk := a.state.Rank(r.Input)
		if f < bestF || (f == bestF && rk < bestRank) {
			best, bestF, bestRank = i, f, rk
		}
	}
	return best
}

// Granted implements Arbiter.
func (a *WFQ) Granted(now noc.Cycle, req Request) {
	delete(a.stamps, req.Packet)
	a.state.Grant(req.Input)
}

// Tick implements Arbiter: system virtual time advances at the fluid rate
// 1/(sum of backlogged weights) per flit time, approximated using the
// request set seen in the most recent arbitration.
func (a *WFQ) Tick(now noc.Cycle) {
	if a.active == 0 {
		a.vtime = math.Max(a.vtime, float64(now.Uint()))
		return
	}
	var sum float64
	for _, w := range a.weights {
		sum += w
	}
	a.vtime += 1 / sum
}
