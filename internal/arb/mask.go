package arb

import "math/bits"

// This file holds the word-parallel bitmask primitives behind the
// bitplane arbitration path (see DESIGN.md "Bitplane arbitration"). A
// mask is a []uint64 in little-endian bit order: input i lives at bit
// i%64 of word i/64. One word covers the paper's radix-64 switch; the
// slice generalises the same code to any radix, so a 256-input arbiter
// is four words, not a different algorithm.

// MaskWords returns the number of uint64 words a mask over n inputs
// needs.
func MaskWords(n int) int { return (n + 63) / 64 }

// MaskSet sets bit i.
//
//ssvc:hotpath
func MaskSet(m []uint64, i int) { m[i>>6] |= 1 << (uint(i) & 63) }

// MaskClear clears bit i.
//
//ssvc:hotpath
func MaskClear(m []uint64, i int) { m[i>>6] &^= 1 << (uint(i) & 63) }

// MaskHas reports whether bit i is set.
//
//ssvc:hotpath
func MaskHas(m []uint64, i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }

// MaskZero clears every bit.
//
//ssvc:hotpath
func MaskZero(m []uint64) {
	for w := range m {
		m[w] = 0
	}
}

// MaskAny reports whether any bit is set.
//
//ssvc:hotpath
func MaskAny(m []uint64) bool {
	for _, w := range m {
		if w != 0 {
			return true
		}
	}
	return false
}

// MaskCount returns the number of set bits.
func MaskCount(m []uint64) int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// MaskFirst returns the lowest set bit, or -1 when the mask is empty.
//
//ssvc:hotpath
func MaskFirst(m []uint64) int {
	for w, v := range m {
		if v != 0 {
			return w<<6 + bits.TrailingZeros64(v)
		}
	}
	return -1
}

// MaskNextFrom returns the first set bit at or above from, wrapping to
// the lowest set bit when none exists at or above from — the rotated
// scan a round-robin pointer needs. It returns -1 when the mask is
// empty. from must lie in [0, 64*len(m)).
//
//ssvc:hotpath
func MaskNextFrom(m []uint64, from int) int {
	w := from >> 6
	if v := m[w] >> (uint(from) & 63); v != 0 {
		return from + bits.TrailingZeros64(v)
	}
	for w++; w < len(m); w++ {
		if v := m[w]; v != 0 {
			return w<<6 + bits.TrailingZeros64(v)
		}
	}
	return MaskFirst(m)
}
