package arb

import (
	"fmt"
	"math/bits"

	"swizzleqos/internal/noc"
)

// LRGState tracks a least-recently-granted priority order over n inputs.
// order[0] is the least recently granted input (highest priority); granting
// an input moves it to the back (lowest priority).
//
// In the Swizzle Switch the LRG order is held as per-crosspoint priority
// bits that self-update on the output bus wires [15]; this is the
// behavioural equivalent. It is reused as the tie-breaker inside SSVC and
// as the selector of the guaranteed-latency lane.
//
// Alongside the order/rank arrays the state keeps rank *bitplanes*:
// planes[b] has input i's bit set iff bit b of rank[i] is set. The planes
// are what the word-parallel arbitration path selects against: MinRankIn
// finds the least-recently-granted member of a candidate mask in
// O(log n) word operations instead of a per-input scan, the software
// equivalent of the per-crosspoint priority wires resolving in one
// bitline discharge.
type LRGState struct {
	order []int // permutation of 0..n-1
	rank  []int // rank[i] = position of input i in order

	planes   [][]uint64 // planes[b]: inputs whose rank has bit b set
	gtS      []uint64   // Grant scratch: inputs with rank > r
	eqS      []uint64   // Grant scratch: rank-comparison equality prefix
	minS     []uint64   // MinRankIn scratch (multi-word path)
	minT     []uint64   // MinRankIn scratch (multi-word path)
	rankBits int        // number of planes = bits.Len(n-1)

	// usePlanes gates the word-parallel machinery on size: below
	// planeThreshold inputs a scalar rank scan beats the bit-sliced
	// passes, so Grant skips plane maintenance and MinRankIn scans —
	// deciding identically, since the minimum rank in a set is unique.
	usePlanes bool
}

// planeThreshold is the input count above which the rank planes pay for
// themselves. A 5-port mesh router or an 8-port Clos leaf resolves faster
// element-wise; the high-radix crossbar is where the bitlines win.
const planeThreshold = 8

// NewLRGState returns an LRG order over inputs 0..n-1, initially in index
// order (input 0 has the highest priority).
func NewLRGState(n int) *LRGState {
	if n <= 0 {
		panic(fmt.Sprintf("arb: LRG size %d must be positive", n))
	}
	words := MaskWords(n)
	s := &LRGState{
		order:     make([]int, n),
		rank:      make([]int, n),
		rankBits:  bits.Len(uint(n - 1)),
		gtS:       make([]uint64, words),
		eqS:       make([]uint64, words),
		minS:      make([]uint64, words),
		minT:      make([]uint64, words),
		usePlanes: n > planeThreshold,
	}
	s.planes = make([][]uint64, s.rankBits)
	for b := range s.planes {
		s.planes[b] = make([]uint64, words)
	}
	for i := range s.order {
		s.order[i] = i
		s.rank[i] = i
	}
	s.rebuildPlanes()
	return s
}

// rebuildPlanes re-derives every rank plane from the rank array.
func (s *LRGState) rebuildPlanes() {
	if !s.usePlanes {
		return
	}
	for b := range s.planes {
		MaskZero(s.planes[b])
		for i, r := range s.rank {
			if r>>uint(b)&1 != 0 {
				MaskSet(s.planes[b], i)
			}
		}
	}
}

// Size returns the number of inputs tracked.
func (s *LRGState) Size() int { return len(s.order) }

// Pick returns the least recently granted input among candidates, or -1 if
// candidates is empty.
func (s *LRGState) Pick(candidates []int) int {
	best, bestRank := -1, len(s.order)
	for _, c := range candidates {
		if r := s.rank[c]; r < bestRank {
			best, bestRank = c, r
		}
	}
	return best
}

// HasPriority reports whether input a beats input b under the current
// order, i.e. a was granted less recently than b.
func (s *LRGState) HasPriority(a, b int) bool { return s.rank[a] < s.rank[b] }

// Rank returns the position of input i in the priority order (0 = highest
// priority).
func (s *LRGState) Rank(i int) int { return s.rank[i] }

// Grant records that input i was granted, moving it to the lowest
// priority position. The rank planes are maintained word-parallel: the
// set of inputs ranked below i is found with a bit-sliced comparison
// against r, their ranks are decremented with a bit-sliced borrow
// ripple, and i's bits are rewritten from r to n-1.
//
//ssvc:hotpath
func (s *LRGState) Grant(i int) {
	r := s.rank[i]
	n := len(s.order)
	copy(s.order[r:], s.order[r+1:])
	s.order[n-1] = i
	for p := r; p < n; p++ {
		s.rank[s.order[p]] = p
	}
	if !s.usePlanes {
		return
	}

	// Rank planes. gt = inputs whose (pre-grant) rank exceeded r; their
	// ranks all decrement by one. eq narrows to inputs matching r on the
	// bits compared so far.
	gt, eq := s.gtS, s.eqS
	for w := range eq {
		gt[w] = 0
		eq[w] = ^uint64(0)
	}
	for b := s.rankBits - 1; b >= 0; b-- {
		pb := s.planes[b]
		if r>>uint(b)&1 == 0 {
			for w := range pb {
				gt[w] |= eq[w] & pb[w]
				eq[w] &^= pb[w]
			}
		} else {
			for w := range pb {
				eq[w] &= pb[w]
			}
		}
	}
	// Bit-sliced decrement of every lane in gt: bits flip from the least
	// significant position up to and including each lane's first set bit.
	for b := 0; b < s.rankBits; b++ {
		pb := s.planes[b]
		done := true
		for w := range pb {
			old := pb[w]
			pb[w] = old ^ gt[w]
			gt[w] &^= old
			if gt[w] != 0 {
				done = false
			}
		}
		if done {
			break
		}
	}
	// Input i moves from rank r to rank n-1: flip the differing bits.
	for b := 0; b < s.rankBits; b++ {
		if (r^(n-1))>>uint(b)&1 != 0 {
			s.planes[b][i>>6] ^= 1 << (uint(i) & 63)
		}
	}
}

// MinRankIn returns the member of mask with the minimum rank — the
// least recently granted candidate — or -1 when mask is empty. mask
// must be MaskWords(Size()) long and contain only valid input bits.
//
// This is the word-parallel selection primitive: scanning the rank
// planes from the most significant bit down, candidates with the bit
// clear (smaller rank) eliminate those with it set, exactly as a
// discharged bitline inhibits the inputs it dominates. Because ranks
// are a permutation, exactly one candidate survives.
//
//ssvc:hotpath
func (s *LRGState) MinRankIn(mask []uint64) int {
	if len(mask) == 1 {
		return s.MinRankIn1(mask[0])
	}
	if !s.usePlanes {
		best, bestRank := -1, len(s.order)
		for w, m := range mask {
			for m != 0 {
				i := w<<6 + bits.TrailingZeros64(m)
				m &= m - 1
				if r := s.rank[i]; r < bestRank {
					best, bestRank = i, r
				}
			}
		}
		return best
	}
	cur := s.minS
	copy(cur, mask)
	if !MaskAny(cur) {
		return -1
	}
	next := s.minT
	for b := s.rankBits - 1; b >= 0; b-- {
		pb := s.planes[b]
		any := false
		for w := range cur {
			next[w] = cur[w] &^ pb[w]
			if next[w] != 0 {
				any = true
			}
		}
		if any {
			cur, next = next, cur
		}
	}
	return MaskFirst(cur)
}

// MinRankIn1 is the single-word MinRankIn: the whole candidate set lives
// in one register, so each rank plane resolves in two ALU ops.
// Only valid when Size() <= 64.
//
//ssvc:hotpath
func (s *LRGState) MinRankIn1(m uint64) int {
	if m == 0 {
		return -1
	}
	if !s.usePlanes {
		best, bestRank := -1, len(s.order)
		for ; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if r := s.rank[i]; r < bestRank {
				best, bestRank = i, r
			}
		}
		return best
	}
	for b := s.rankBits - 1; b >= 0; b-- {
		if t := m &^ s.planes[b][0]; t != 0 {
			m = t
		}
	}
	return bits.TrailingZeros64(m)
}

// Order returns a copy of the current priority order, highest priority
// first.
func (s *LRGState) Order() []int {
	out := make([]int, len(s.order))
	copy(out, s.order)
	return out
}

// SetOrder installs an explicit priority order (a permutation of 0..n-1).
// It is used by the circuit-equivalence tests to enumerate all valid LRG
// states.
func (s *LRGState) SetOrder(order []int) error {
	if len(order) != len(s.order) {
		return fmt.Errorf("arb: order length %d != size %d", len(order), len(s.order))
	}
	seen := make([]bool, len(order))
	for _, v := range order {
		if v < 0 || v >= len(order) || seen[v] {
			return fmt.Errorf("arb: order %v is not a permutation", order)
		}
		seen[v] = true
	}
	copy(s.order, order)
	for p, v := range s.order {
		s.rank[v] = p
	}
	s.rebuildPlanes()
	return nil
}

// LRG is the Swizzle Switch's default least-recently-granted arbiter: the
// winner is the requesting input granted longest ago. It is
// class-unaware — the "No QoS" configuration of Figure 4(a), under which
// all flows converge to an equal share of bandwidth during congestion.
type LRG struct {
	state *LRGState
	cand  []int
	mask  []uint64 // scratch request mask for the word-parallel path
}

// NewLRG returns an LRG arbiter over n inputs.
func NewLRG(n int) *LRG {
	return &LRG{state: NewLRGState(n), cand: make([]int, 0, n), mask: make([]uint64, MaskWords(n))}
}

// Arbitrate implements Arbiter. Dense request sets resolve word-parallel
// against the rank bitplanes; tiny sets (and the degenerate case of a
// duplicated input, which the bitmask cannot represent) fall back to the
// element-wise scan, which is faster below a handful of requests and
// decides identically.
//
//ssvc:hotpath
func (a *LRG) Arbitrate(now noc.Cycle, reqs []Request) int {
	if len(reqs) == 0 {
		return -1
	}
	if len(reqs) > 4 {
		MaskZero(a.mask)
		dup := false
		for i := range reqs {
			if MaskHas(a.mask, reqs[i].Input) {
				dup = true
				break
			}
			MaskSet(a.mask, reqs[i].Input)
		}
		if !dup {
			w := a.state.MinRankIn(a.mask)
			for i := range reqs {
				if reqs[i].Input == w {
					return i
				}
			}
			return -1
		}
	}
	best, bestRank := -1, a.state.Size()
	for i, r := range reqs {
		if rk := a.state.Rank(r.Input); rk < bestRank {
			best, bestRank = i, rk
		}
	}
	return best
}

// Granted implements Arbiter.
func (a *LRG) Granted(now noc.Cycle, req Request) { a.state.Grant(req.Input) }

// Tick implements Arbiter.
func (a *LRG) Tick(now noc.Cycle) {}

// State exposes the underlying LRG order for inspection in tests.
func (a *LRG) State() *LRGState { return a.state }
