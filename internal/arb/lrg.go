package arb

import (
	"fmt"

	"swizzleqos/internal/noc"
)

// LRGState tracks a least-recently-granted priority order over n inputs.
// order[0] is the least recently granted input (highest priority); granting
// an input moves it to the back (lowest priority).
//
// In the Swizzle Switch the LRG order is held as per-crosspoint priority
// bits that self-update on the output bus wires [15]; this is the
// behavioural equivalent. It is reused as the tie-breaker inside SSVC and
// as the selector of the guaranteed-latency lane.
type LRGState struct {
	order []int // permutation of 0..n-1
	rank  []int // rank[i] = position of input i in order
}

// NewLRGState returns an LRG order over inputs 0..n-1, initially in index
// order (input 0 has the highest priority).
func NewLRGState(n int) *LRGState {
	if n <= 0 {
		panic(fmt.Sprintf("arb: LRG size %d must be positive", n))
	}
	s := &LRGState{order: make([]int, n), rank: make([]int, n)}
	for i := range s.order {
		s.order[i] = i
		s.rank[i] = i
	}
	return s
}

// Size returns the number of inputs tracked.
func (s *LRGState) Size() int { return len(s.order) }

// Pick returns the least recently granted input among candidates, or -1 if
// candidates is empty.
func (s *LRGState) Pick(candidates []int) int {
	best, bestRank := -1, len(s.order)
	for _, c := range candidates {
		if r := s.rank[c]; r < bestRank {
			best, bestRank = c, r
		}
	}
	return best
}

// HasPriority reports whether input a beats input b under the current
// order, i.e. a was granted less recently than b.
func (s *LRGState) HasPriority(a, b int) bool { return s.rank[a] < s.rank[b] }

// Rank returns the position of input i in the priority order (0 = highest
// priority).
func (s *LRGState) Rank(i int) int { return s.rank[i] }

// Grant records that input i was granted, moving it to the lowest
// priority position.
func (s *LRGState) Grant(i int) {
	r := s.rank[i]
	copy(s.order[r:], s.order[r+1:])
	s.order[len(s.order)-1] = i
	for p := r; p < len(s.order); p++ {
		s.rank[s.order[p]] = p
	}
}

// Order returns a copy of the current priority order, highest priority
// first.
func (s *LRGState) Order() []int {
	out := make([]int, len(s.order))
	copy(out, s.order)
	return out
}

// SetOrder installs an explicit priority order (a permutation of 0..n-1).
// It is used by the circuit-equivalence tests to enumerate all valid LRG
// states.
func (s *LRGState) SetOrder(order []int) error {
	if len(order) != len(s.order) {
		return fmt.Errorf("arb: order length %d != size %d", len(order), len(s.order))
	}
	seen := make([]bool, len(order))
	for _, v := range order {
		if v < 0 || v >= len(order) || seen[v] {
			return fmt.Errorf("arb: order %v is not a permutation", order)
		}
		seen[v] = true
	}
	copy(s.order, order)
	for p, v := range s.order {
		s.rank[v] = p
	}
	return nil
}

// LRG is the Swizzle Switch's default least-recently-granted arbiter: the
// winner is the requesting input granted longest ago. It is
// class-unaware — the "No QoS" configuration of Figure 4(a), under which
// all flows converge to an equal share of bandwidth during congestion.
type LRG struct {
	state *LRGState
	cand  []int
}

// NewLRG returns an LRG arbiter over n inputs.
func NewLRG(n int) *LRG {
	return &LRG{state: NewLRGState(n), cand: make([]int, 0, n)}
}

// Arbitrate implements Arbiter.
//
//ssvc:hotpath
func (a *LRG) Arbitrate(now noc.Cycle, reqs []Request) int {
	if len(reqs) == 0 {
		return -1
	}
	best, bestRank := -1, a.state.Size()
	for i, r := range reqs {
		if rk := a.state.Rank(r.Input); rk < bestRank {
			best, bestRank = i, rk
		}
	}
	return best
}

// Granted implements Arbiter.
func (a *LRG) Granted(now noc.Cycle, req Request) { a.state.Grant(req.Input) }

// Tick implements Arbiter.
func (a *LRG) Tick(now noc.Cycle) {}

// State exposes the underlying LRG order for inspection in tests.
func (a *LRG) State() *LRGState { return a.state }
