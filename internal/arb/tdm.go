package arb

import (
	"fmt"

	"swizzleqos/internal/noc"
)

// TDM is true time-division multiplexing (§2.2): the output channel's
// cycles are divided into a fixed slot table, and each cycle belongs to
// exactly one input. "If the source has no packets to send, that time
// slot is wasted and results in link underutilization" — the property
// Virtual Clock was designed to fix, and the mechanism behind the
// Æthereal and Nostrum guaranteed-throughput services the paper cites in
// §5. A packet may only start in one of its owner's slots; once started
// it holds the channel to completion (the slot table paces packet starts,
// matching the per-packet granularity of the rest of the model).
type TDM struct {
	table []int // slot s belongs to input table[s mod len]
}

// NewTDM returns a TDM arbiter with the given slot table; table[s] is the
// input that owns slot s. The table repeats cyclically, so bandwidth
// shares are the inputs' slot counts.
func NewTDM(table []int) *TDM {
	if len(table) == 0 {
		panic("arb: TDM needs a non-empty slot table")
	}
	for s, in := range table {
		if in < 0 {
			panic(fmt.Sprintf("arb: TDM slot %d assigned to negative input %d", s, in))
		}
	}
	return &TDM{table: append([]int(nil), table...)}
}

// UniformTDMTable builds a round-robin slot table over n inputs with the
// given slot length in cycles (typically the packet length plus its
// arbitration cycle, so each slot admits one packet start).
func UniformTDMTable(n, slotCycles int) []int {
	if n < 1 || slotCycles < 1 {
		panic(fmt.Sprintf("arb: uniform TDM table over %d inputs with %d-cycle slots", n, slotCycles))
	}
	table := make([]int, n*slotCycles)
	for i := range table {
		table[i] = i / slotCycles
	}
	return table
}

// Owner returns the input owning the slot at the given cycle.
func (a *TDM) Owner(now noc.Cycle) int {
	return a.table[now.Uint()%uint64(len(a.table))]
}

// Arbitrate implements Arbiter: the slot's owner is served if it is
// requesting; otherwise the cycle is wasted — deliberately not
// work-conserving.
//
//ssvc:hotpath
func (a *TDM) Arbitrate(now noc.Cycle, reqs []Request) int {
	owner := a.Owner(now)
	for i, r := range reqs {
		if r.Input == owner {
			return i
		}
	}
	return -1
}

// Granted implements Arbiter.
func (a *TDM) Granted(now noc.Cycle, req Request) {}

// Tick implements Arbiter.
func (a *TDM) Tick(now noc.Cycle) {}

var _ Arbiter = (*TDM)(nil)
