package arb

import (
	"testing"

	"swizzleqos/internal/noc"
)

func lenReq(input, length int) Request {
	return Request{
		Input:  input,
		Class:  noc.GuaranteedBandwidth,
		Packet: &noc.Packet{Src: input, Class: noc.GuaranteedBandwidth, Length: length},
	}
}

// runScheduler drives an arbiter with persistent requests for `grants`
// grants and returns per-input flit counts.
func runScheduler(t *testing.T, a Arbiter, reqs []Request, grants int) []int {
	t.Helper()
	maxIn := 0
	for _, r := range reqs {
		if r.Input > maxIn {
			maxIn = r.Input
		}
	}
	flits := make([]int, maxIn+1)
	cycle := noc.Cycle(0)
	for g := 0; g < grants; {
		w := a.Arbitrate(cycle, reqs)
		if w >= 0 {
			flits[reqs[w].Input] += reqs[w].Packet.Length
			a.Granted(cycle, reqs[w])
			g++
		}
		a.Tick(cycle)
		cycle++
		if cycle > noc.Cycle(grants)*100 {
			t.Fatalf("scheduler made no progress after %d cycles", cycle)
		}
	}
	return flits
}

func TestWRRBandwidthRatios(t *testing.T) {
	// Weights 4:2:1:1 with equal packet sizes must deliver flits in the
	// same ratio under saturation.
	a := NewWRR([]int{4, 2, 1, 1}, true)
	reqs := []Request{lenReq(0, 1), lenReq(1, 1), lenReq(2, 1), lenReq(3, 1)}
	flits := runScheduler(t, a, reqs, 800)
	if flits[0] != 400 || flits[1] != 200 || flits[2] != 100 || flits[3] != 100 {
		t.Fatalf("flits = %v, want [400 200 100 100]", flits)
	}
}

func TestWRRWorkConservingSkipsIdle(t *testing.T) {
	a := NewWRR([]int{4, 4}, true)
	reqs := []Request{lenReq(1, 1)} // input 0 never requests
	flits := runScheduler(t, a, reqs, 100)
	if flits[1] != 100 {
		t.Fatalf("input 1 got %d flits, want all 100", flits[1])
	}
}

func TestWRRFixedScheduleWastesSlots(t *testing.T) {
	// The paper's §2.2 criticism: a fixed WRR schedule does not hand
	// idle slots to flows with excess demand. With weights 1:1 and only
	// input 1 requesting, half the arbitration attempts are wasted.
	a := NewWRR([]int{1, 1}, false)
	reqs := []Request{lenReq(1, 1)}
	wasted, granted := 0, 0
	for c := 0; c < 100; c++ {
		w := a.Arbitrate(noc.Cycle(c), reqs)
		if w < 0 {
			wasted++
		} else {
			granted++
			a.Granted(noc.Cycle(c), reqs[w])
		}
	}
	if wasted != 50 || granted != 50 {
		t.Fatalf("wasted=%d granted=%d, want 50/50", wasted, granted)
	}
}

func TestWRRPanicsOnBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWRR with zero weight did not panic")
		}
	}()
	NewWRR([]int{1, 0}, true)
}

func TestDWRRBandwidthRatios(t *testing.T) {
	a := NewDWRR([]int{8, 4, 2, 2})
	reqs := []Request{lenReq(0, 2), lenReq(1, 2), lenReq(2, 2), lenReq(3, 2)}
	flits := runScheduler(t, a, reqs, 800)
	total := flits[0] + flits[1] + flits[2] + flits[3]
	ratio := func(i int) float64 { return float64(flits[i]) / float64(total) }
	for i, want := range []float64{0.5, 0.25, 0.125, 0.125} {
		got := ratio(i)
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("input %d share = %.3f, want ~%.3f", i, got, want)
		}
	}
}

func TestDWRRVariablePacketSizes(t *testing.T) {
	// DWRR's point: equal quanta with different packet lengths still
	// yield equal *flit* shares, unlike per-packet round robin.
	a := NewDWRR([]int{8, 8})
	reqs := []Request{lenReq(0, 8), lenReq(1, 1)}
	flits := runScheduler(t, a, reqs, 900)
	total := flits[0] + flits[1]
	share0 := float64(flits[0]) / float64(total)
	if share0 < 0.45 || share0 > 0.55 {
		t.Fatalf("8-flit flow share = %.3f, want ~0.5 (flit fairness)", share0)
	}
}

func TestDWRRDeficitResetsWhenIdle(t *testing.T) {
	a := NewDWRR([]int{4, 4})
	// Input 0 idles while input 1 is served: input 0 must not bank
	// credit for a later burst.
	only1 := []Request{lenReq(1, 1)}
	for c := 0; c < 50; c++ {
		if w := a.Arbitrate(noc.Cycle(c), only1); w >= 0 {
			a.Granted(noc.Cycle(c), only1[w])
		}
	}
	if a.deficit[0] != 0 {
		t.Fatalf("idle input kept deficit %d, want 0", a.deficit[0])
	}
}

func TestDWRRLargePacketEventuallyServed(t *testing.T) {
	// A packet larger than one quantum accumulates deficit across
	// rounds rather than starving.
	a := NewDWRR([]int{2, 2})
	reqs := []Request{lenReq(0, 9), lenReq(1, 1)}
	flits := runScheduler(t, a, reqs, 100)
	if flits[0] == 0 {
		t.Fatal("9-flit packets never served with quantum 2")
	}
}
