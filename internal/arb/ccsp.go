package arb

import (
	"fmt"

	"swizzleqos/internal/noc"
)

// CCSP is Credit-Controlled Static Priority arbitration [Akesson et al.,
// RTCSA 2008], the related-work scheme the paper credits with decoupling
// latency from the allocated rate (§5): each input is provisioned with a
// rate (credits per cycle, in flits) and a burst allowance, and eligible
// inputs — those whose accumulated credit covers their head packet — are
// served in a static priority order. A low-rate input placed at high
// priority therefore sees low latency, at the cost of static priorities
// and per-input provisioning state.
//
// The optional work-conserving mode hands slack cycles to the
// highest-priority requester even when no one is eligible, mirroring the
// switch's work-conserving channel.
type CCSP struct {
	rate           []float64 // credits (flits) earned per cycle
	burst          []float64 // credit cap
	priority       []int     // static order: lower value is served first
	credit         []float64
	lastTick       noc.Cycle
	workConserving bool
}

// NewCCSP returns a CCSP arbiter. rates[i] is input i's provisioned rate
// in flits/cycle, bursts[i] its credit cap in flits, and priorities[i]
// its static priority (lower = higher). All three must have one entry per
// input.
func NewCCSP(rates, bursts []float64, priorities []int, workConserving bool) *CCSP {
	n := len(rates)
	if n == 0 || len(bursts) != n || len(priorities) != n {
		panic(fmt.Sprintf("arb: CCSP needs equal-length rates/bursts/priorities, got %d/%d/%d",
			len(rates), len(bursts), len(priorities)))
	}
	for i := 0; i < n; i++ {
		if rates[i] < 0 || rates[i] > 1 {
			panic(fmt.Sprintf("arb: CCSP rate[%d]=%g outside [0,1]", i, rates[i]))
		}
		if bursts[i] < 1 {
			panic(fmt.Sprintf("arb: CCSP burst[%d]=%g must cover at least one flit", i, bursts[i]))
		}
	}
	return &CCSP{
		rate:           append([]float64(nil), rates...),
		burst:          append([]float64(nil), bursts...),
		priority:       append([]int(nil), priorities...),
		credit:         append([]float64(nil), bursts...), // start provisioned
		workConserving: workConserving,
	}
}

// Credit returns input i's current credit, for tests.
func (a *CCSP) Credit(i int) float64 { return a.credit[i] }

// Arbitrate implements Arbiter: the highest static priority among
// eligible (credit-covered) requests wins; with work conservation, slack
// falls through to the highest-priority requester.
//
//ssvc:hotpath
func (a *CCSP) Arbitrate(now noc.Cycle, reqs []Request) int {
	best, bestPrio := -1, int(^uint(0)>>1)
	for i, r := range reqs {
		if a.credit[r.Input] < float64(r.Packet.Length) {
			continue
		}
		if p := a.priority[r.Input]; p < bestPrio {
			best, bestPrio = i, p
		}
	}
	if best >= 0 || !a.workConserving {
		return best
	}
	for i, r := range reqs {
		if p := a.priority[r.Input]; p < bestPrio {
			best, bestPrio = i, p
		}
	}
	return best
}

// Granted implements Arbiter: service consumes credit (slack grants may
// drive it negative, deferring the input until it re-earns eligibility).
func (a *CCSP) Granted(now noc.Cycle, req Request) {
	a.credit[req.Input] -= float64(req.Packet.Length)
}

// Tick implements Arbiter: credits accrue at the provisioned rate up to
// the burst cap, once per elapsed cycle regardless of call cadence.
func (a *CCSP) Tick(now noc.Cycle) {
	if now <= a.lastTick {
		return
	}
	elapsed := float64((now - a.lastTick).Uint())
	a.lastTick = now
	for i := range a.credit {
		a.credit[i] += a.rate[i] * elapsed
		if a.credit[i] > a.burst[i] {
			a.credit[i] = a.burst[i]
		}
	}
}

// AgeBased is oldest-first arbitration: the requesting input whose head
// packet has waited longest (earliest input-buffer arrival) wins, with
// LRG breaking ties. A common latency-fairness baseline for best-effort
// traffic.
type AgeBased struct {
	state *LRGState
}

// NewAgeBased returns an oldest-first arbiter over n inputs.
func NewAgeBased(n int) *AgeBased { return &AgeBased{state: NewLRGState(n)} }

// Arbitrate implements Arbiter.
//
//ssvc:hotpath
func (a *AgeBased) Arbitrate(now noc.Cycle, reqs []Request) int {
	best := -1
	var bestAge noc.Cycle
	bestRank := a.state.Size()
	for i, r := range reqs {
		age := r.Packet.EnqueuedAt
		rk := a.state.Rank(r.Input)
		if best == -1 || age < bestAge || (age == bestAge && rk < bestRank) {
			best, bestAge, bestRank = i, age, rk
		}
	}
	return best
}

// Granted implements Arbiter.
func (a *AgeBased) Granted(now noc.Cycle, req Request) { a.state.Grant(req.Input) }

// Tick implements Arbiter.
func (a *AgeBased) Tick(now noc.Cycle) {}

// compile-time interface checks for the whole baseline family.
var (
	_ Arbiter = (*LRG)(nil)
	_ Arbiter = (*RoundRobin)(nil)
	_ Arbiter = (*MultiLevel)(nil)
	_ Arbiter = (*WRR)(nil)
	_ Arbiter = (*DWRR)(nil)
	_ Arbiter = (*WFQ)(nil)
	_ Arbiter = (*OrigVC)(nil)
	_ Arbiter = (*CCSP)(nil)
	_ Arbiter = (*AgeBased)(nil)

	_ ArrivalObserver = (*WFQ)(nil)
	_ ArrivalObserver = (*OrigVC)(nil)
	_                 = noc.BestEffort
)
