package arb

import (
	"testing"

	"swizzleqos/internal/noc"
)

func TestRoundRobinRotates(t *testing.T) {
	a := NewRoundRobin(4)
	reqs := []Request{req(0), req(1), req(2), req(3)}
	want := []int{0, 1, 2, 3, 0, 1}
	for i, exp := range want {
		w := a.Arbitrate(noc.Cycle(i), reqs)
		if reqs[w].Input != exp {
			t.Fatalf("grant %d: winner %d, want %d", i, reqs[w].Input, exp)
		}
		a.Granted(noc.Cycle(i), reqs[w])
	}
}

func TestRoundRobinSkipsNonRequesting(t *testing.T) {
	a := NewRoundRobin(4)
	reqs := []Request{req(1), req(3)}
	w := a.Arbitrate(0, reqs)
	if reqs[w].Input != 1 {
		t.Fatalf("winner %d, want 1", reqs[w].Input)
	}
	a.Granted(0, reqs[w])
	// Pointer at 2; 3 is the next requester.
	w = a.Arbitrate(1, reqs)
	if reqs[w].Input != 3 {
		t.Fatalf("winner %d, want 3", reqs[w].Input)
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	a := NewRoundRobin(2)
	if w := a.Arbitrate(0, nil); w != -1 {
		t.Fatalf("Arbitrate(nil) = %d, want -1", w)
	}
}

func classReq(input int, c noc.Class) Request {
	return Request{Input: input, Class: c, Packet: &noc.Packet{Src: input, Class: c}}
}

func TestMultiLevelStrictPriority(t *testing.T) {
	a := NewMultiLevel(4, nil)
	reqs := []Request{
		classReq(0, noc.BestEffort),
		classReq(1, noc.GuaranteedLatency),
		classReq(2, noc.GuaranteedBandwidth),
	}
	w := a.Arbitrate(0, reqs)
	if reqs[w].Input != 1 {
		t.Fatalf("winner %d, want the GL input 1", reqs[w].Input)
	}
}

func TestMultiLevelLRGWithinLevel(t *testing.T) {
	a := NewMultiLevel(4, nil)
	reqs := []Request{
		classReq(2, noc.GuaranteedBandwidth),
		classReq(1, noc.GuaranteedBandwidth),
	}
	w := a.Arbitrate(0, reqs)
	if reqs[w].Input != 1 {
		t.Fatalf("winner %d, want 1 (lower LRG rank)", reqs[w].Input)
	}
	a.Granted(0, reqs[w])
	w = a.Arbitrate(1, reqs)
	if reqs[w].Input != 2 {
		t.Fatalf("second winner %d, want 2", reqs[w].Input)
	}
}

func TestMultiLevelStarvation(t *testing.T) {
	// The paper's criticism of fixed-priority QoS [14]: a persistent
	// high level starves lower levels completely.
	a := NewMultiLevel(2, nil)
	reqs := []Request{
		classReq(0, noc.GuaranteedBandwidth),
		classReq(1, noc.BestEffort),
	}
	for c := 0; c < 1000; c++ {
		w := a.Arbitrate(noc.Cycle(c), reqs)
		if reqs[w].Input != 0 {
			t.Fatalf("cycle %d: best-effort input won under fixed priority", c)
		}
		a.Granted(noc.Cycle(c), reqs[w])
	}
}

func TestMultiLevelCustomLevels(t *testing.T) {
	// A custom level function inverts the default ordering.
	a := NewMultiLevel(2, func(r Request) int { return -int(r.Class) })
	reqs := []Request{
		classReq(0, noc.GuaranteedLatency),
		classReq(1, noc.BestEffort),
	}
	w := a.Arbitrate(0, reqs)
	if reqs[w].Input != 1 {
		t.Fatalf("winner %d, want 1 under inverted levels", reqs[w].Input)
	}
}
