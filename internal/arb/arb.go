// Package arb provides output-channel arbitration policies for a
// single-stage crossbar switch.
//
// Each output channel of the switch owns one Arbiter. Every cycle the
// channel is idle, the switch presents the set of inputs requesting that
// output and the arbiter picks at most one winner; the switch then notifies
// the arbiter of the grant so it can update its internal priority state.
//
// The package contains the baselines the paper evaluates against or
// discusses in its background section (§2.2):
//
//   - LRG: least-recently-granted, the Swizzle Switch's default best-effort
//     policy and the "No QoS" baseline of Figure 4(a).
//   - RoundRobin: classic rotating-priority arbitration.
//   - MultiLevel: the fixed-priority 4-level message QoS of the prior
//     Swizzle Switch work [14]; high levels can starve low levels.
//   - WRR / DWRR: static weighted schemes with strict bandwidth shares but
//     poor redistribution of leftover bandwidth.
//   - WFQ: weighted fair queueing emulating bit-by-bit round robin via
//     per-packet finish times.
//   - OrigVC: the original Virtual Clock algorithm [19] with exact
//     per-packet time stamps, the baseline curve of Figure 5.
//
// The paper's own mechanism, SSVC, lives in package core and implements the
// same Arbiter interface.
package arb

import "swizzleqos/internal/noc"

// Request describes one input port contending for an output channel in the
// current cycle. Packet is the head packet the input would transmit if
// granted. Input is a port number, so it shares the radix bound declared
// on every config struct; the annotation lets the valuerange analyzer
// carry that bound into the mask and shift kernels.
type Request struct {
	//ssvc:range Input 0..4095
	Input  int
	Class  noc.Class
	Packet *noc.Packet
}

// Arbiter selects a winner among inputs requesting a single output channel.
//
// Implementations are single-output: a radix-N switch instantiates N
// independent arbiters. They are not safe for concurrent use; the simulator
// drives them from a single goroutine, mirroring the synchronous hardware.
type Arbiter interface {
	// Arbitrate returns the index into reqs of the winning request, or -1
	// if no request can be granted this cycle (for example, all pending
	// guaranteed-latency traffic is being policed, or a fixed-schedule
	// slot is wasted). Arbitrate may advance internal schedule
	// bookkeeping (frame pointers, deficit refills) but must leave
	// grant-dependent priority updates to Granted. It is called at most
	// once per cycle.
	Arbitrate(now noc.Cycle, reqs []Request) int

	// Granted commits the grant decided by Arbitrate, updating priority
	// state (LRG order, virtual clocks, deficit counters, ...).
	Granted(now noc.Cycle, req Request)

	// Tick advances per-cycle state such as the real-time clock used for
	// virtual clock maintenance. The switch calls it exactly once per
	// cycle, after arbitration.
	Tick(now noc.Cycle)
}

// ArrivalObserver is implemented by arbiters that stamp packets on arrival
// at the input buffer rather than on transmission. The original Virtual
// Clock algorithm stamps "upon receiving each packet" (§2.2); the switch
// calls PacketArrived when a packet destined to this arbiter's output
// enters its input buffer.
type ArrivalObserver interface {
	PacketArrived(now noc.Cycle, pkt *noc.Packet)
}
