package arb

import (
	"fmt"
	"math"

	"swizzleqos/internal/noc"
)

// OrigVC implements the original Virtual Clock algorithm [19] exactly as
// quoted in §2.2 of the paper:
//
//	Upon receiving each packet from flow i,
//	  1. auxVC <- max(auxVC, real time)
//	  2. auxVC <- auxVC + Vtick_i
//	  3. stamp the packet with the auxVC value
//	Transmit packets in the order of increasing stamp values.
//
// Stamps are exact (unbounded counters, no coarse quantisation), so the
// algorithm exhibits the bandwidth/latency coupling of Figure 5: flows
// with low reserved rates carry large Vticks, stamp far into the future,
// and suffer high average latency.
type OrigVC struct {
	vticks []noc.VTime // per input, cycles per packet at the reserved rate
	aux    []noc.VTime // per-flow virtual clocks
	state  *LRGState
}

// NewOrigVC returns an original-Virtual-Clock arbiter for one output of a
// radix-n switch. vticks[i] is input i's Vtick in cycles (FlowSpec.Vtick);
// an input with Vtick 0 has no reservation and its packets always lose to
// stamped traffic (best-effort behaviour).
func NewOrigVC(n int, vticks []noc.VTime) *OrigVC {
	if len(vticks) != n {
		panic(fmt.Sprintf("arb: OrigVC needs %d vticks, got %d", n, len(vticks)))
	}
	return &OrigVC{
		vticks: append([]noc.VTime(nil), vticks...),
		aux:    make([]noc.VTime, n),
		state:  NewLRGState(n),
	}
}

// PacketArrived implements ArrivalObserver, performing steps 1-3 of the
// algorithm.
func (a *OrigVC) PacketArrived(now noc.Cycle, pkt *noc.Packet) {
	i := pkt.Src
	if a.vticks[i] == 0 {
		pkt.Stamp = math.MaxUint64
		return
	}
	// Step 1 reads the real-time clock into the virtual domain.
	if nv := noc.VTimeOfCycle(now); nv > a.aux[i] {
		a.aux[i] = nv
	}
	a.aux[i] += a.vticks[i]
	pkt.Stamp = a.aux[i]
}

// Arbitrate implements Arbiter: the smallest stamp wins; LRG breaks ties.
//
//ssvc:hotpath
func (a *OrigVC) Arbitrate(now noc.Cycle, reqs []Request) int {
	best := -1
	bestStamp := noc.VTime(math.MaxUint64)
	bestRank := a.state.Size()
	for i, r := range reqs {
		s := r.Packet.Stamp
		rk := a.state.Rank(r.Input)
		if best == -1 || s < bestStamp || (s == bestStamp && rk < bestRank) {
			best, bestStamp, bestRank = i, s, rk
		}
	}
	return best
}

// Granted implements Arbiter.
func (a *OrigVC) Granted(now noc.Cycle, req Request) { a.state.Grant(req.Input) }

// Tick implements Arbiter.
func (a *OrigVC) Tick(now noc.Cycle) {}

// Aux returns flow i's current virtual clock, for tests.
func (a *OrigVC) Aux(i int) noc.VTime { return a.aux[i] }
