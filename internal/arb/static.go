package arb

import (
	"fmt"

	"swizzleqos/internal/noc"
)

// WRR is a weighted round robin arbiter (§2.2). Each input is assigned an
// integer weight in flits per frame. In its pure (non-work-conserving)
// form the frame schedule is fixed: if the scheduled input has nothing to
// send, the slot is wasted — the underutilisation the paper criticises.
// With workConserving set, unused slots are skipped, which preserves the
// bandwidth ratios but still redistributes leftover bandwidth by weight
// rather than on demand.
type WRR struct {
	weights        []int
	credits        []int
	ptr            int
	workConserving bool
}

// NewWRR returns a weighted round robin arbiter. weights[i] is input i's
// share of a frame, in flits; every weight must be positive. If
// workConserving is false, a slot scheduled for a non-requesting input is
// wasted (Arbitrate returns -1), emulating a TDM-like fixed schedule.
func NewWRR(weights []int, workConserving bool) *WRR {
	if len(weights) == 0 {
		panic("arb: WRR needs at least one weight")
	}
	for i, w := range weights {
		if w <= 0 {
			panic(fmt.Sprintf("arb: WRR weight[%d]=%d must be positive", i, w))
		}
	}
	a := &WRR{
		weights:        append([]int(nil), weights...),
		credits:        make([]int, len(weights)),
		workConserving: workConserving,
	}
	a.refill()
	return a
}

func (a *WRR) refill() {
	copy(a.credits, a.weights)
}

// Arbitrate implements Arbiter. It may advance frame bookkeeping (credits,
// pointer) even when returning -1.
//
//ssvc:hotpath
func (a *WRR) Arbitrate(now noc.Cycle, reqs []Request) int {
	if len(reqs) == 0 {
		return -1
	}
	byInput := make(map[int]int, len(reqs))
	for i, r := range reqs {
		byInput[r.Input] = i
	}
	n := len(a.weights)
	// Two passes: if every credited slot is exhausted, refill and retry.
	for pass := 0; pass < 2; pass++ {
		for k := 0; k < n; k++ {
			i := (a.ptr + k) % n
			if a.credits[i] <= 0 {
				continue
			}
			ri, requesting := byInput[i]
			if requesting {
				a.ptr = i
				return ri
			}
			if !a.workConserving {
				// Fixed schedule: the slot belongs to input i; burn
				// one flit of its credit and waste the cycle.
				a.credits[i]--
				a.advance()
				return -1
			}
		}
		a.refill()
	}
	return -1
}

func (a *WRR) advance() {
	n := len(a.weights)
	if a.credits[a.ptr] <= 0 {
		a.ptr = (a.ptr + 1) % n
	}
	for k := 0; k < n; k++ {
		if a.credits[a.ptr] > 0 {
			return
		}
		a.ptr = (a.ptr + 1) % n
	}
	a.refill()
}

// Granted implements Arbiter: the winner consumes credit equal to the
// packet length.
func (a *WRR) Granted(now noc.Cycle, req Request) {
	a.credits[req.Input] -= req.Packet.Length
	if a.credits[req.Input] < 0 {
		a.credits[req.Input] = 0
	}
	a.advance()
}

// Tick implements Arbiter.
func (a *WRR) Tick(now noc.Cycle) {}

// DWRR is a deficit weighted round robin arbiter [Shreedhar & Varghese].
// Each input accrues a quantum of flits per round; its head packet is
// served once the accumulated deficit covers the packet length, making the
// scheme fair with variable packet sizes where plain WRR is not.
type DWRR struct {
	quanta      []int
	deficit     []int
	ptr         int
	turnStarted bool // quantum already credited for the current turn
}

// NewDWRR returns a deficit weighted round robin arbiter; quanta[i] is the
// per-round flit quantum of input i (must be positive).
func NewDWRR(quanta []int) *DWRR {
	if len(quanta) == 0 {
		panic("arb: DWRR needs at least one quantum")
	}
	for i, q := range quanta {
		if q <= 0 {
			panic(fmt.Sprintf("arb: DWRR quantum[%d]=%d must be positive", i, q))
		}
	}
	return &DWRR{
		quanta:  append([]int(nil), quanta...),
		deficit: make([]int, len(quanta)),
	}
}

// Arbitrate implements Arbiter. The pointer gives each input a "turn":
// arriving at an input credits its quantum exactly once, it is served
// while its deficit covers its head packet, and the pointer moves on when
// the deficit runs out. Deficit refills happen here; grant-side
// consumption happens in Granted.
//
//ssvc:hotpath
func (a *DWRR) Arbitrate(now noc.Cycle, reqs []Request) int {
	if len(reqs) == 0 {
		return -1
	}
	n := len(a.quanta)
	byInput := make(map[int]int, len(reqs))
	for i, r := range reqs {
		byInput[r.Input] = i
	}
	for visits := 0; visits < n; visits++ {
		i := a.ptr
		ri, requesting := byInput[i]
		if requesting {
			need := reqs[ri].Packet.Length
			if !a.turnStarted {
				a.deficit[i] += a.quanta[i]
				a.turnStarted = true
			}
			if a.deficit[i] >= need {
				return ri
			}
		} else {
			// An input with an empty queue loses its deficit
			// (classic DWRR).
			a.deficit[i] = 0
		}
		a.ptr = (a.ptr + 1) % n
		a.turnStarted = false
	}
	// No input can cover its head packet this round; deficits persist
	// and accumulate on subsequent calls, so oversized packets are
	// served eventually rather than starving.
	return -1
}

// Granted implements Arbiter.
func (a *DWRR) Granted(now noc.Cycle, req Request) {
	a.deficit[req.Input] -= req.Packet.Length
	if a.deficit[req.Input] < 0 {
		a.deficit[req.Input] = 0
	}
}

// Tick implements Arbiter.
func (a *DWRR) Tick(now noc.Cycle) {}
