package arb

import (
	"testing"

	"swizzleqos/internal/noc"
)

// TestTicksAreNoOps pins the contract that the stateless arbiters ignore
// the per-cycle clock: behaviour before and after Tick is identical.
func TestTicksAreNoOps(t *testing.T) {
	reqs := []Request{req(0), req(1)}
	arbs := []Arbiter{
		NewLRG(4),
		NewRoundRobin(4),
		NewMultiLevel(4, nil),
		NewWRR([]int{1, 1, 1, 1}, true),
		NewDWRR([]int{4, 4, 4, 4}),
		NewOrigVC(4, []noc.VTime{10, 10, 10, 10}),
		NewPVC(4, []noc.VTime{10, 10, 10, 10}, 5),
		NewAgeBased(4),
	}
	for _, a := range arbs {
		before := a.Arbitrate(0, reqs)
		a.Tick(0)
		a.Tick(5)
		after := a.Arbitrate(6, reqs)
		if before != after {
			t.Errorf("%T: Tick changed the decision %d -> %d", a, before, after)
		}
	}
}

func TestAccessors(t *testing.T) {
	l := NewLRG(4)
	if l.State().Size() != 4 {
		t.Error("LRG.State size")
	}
	o := NewOrigVC(2, []noc.VTime{5, 7})
	p := gbPacket(0, 4)
	o.PacketArrived(3, p)
	if o.Aux(0) != 8 {
		t.Errorf("OrigVC.Aux = %d, want 8", o.Aux(0))
	}
	// PVC's Granted only rotates LRG state.
	v := NewPVC(2, []noc.VTime{5, 7}, 1)
	v.Granted(0, Request{Input: 0, Class: 0, Packet: gbPacket(0, 4)})
	if v.state.Rank(0) != 1 {
		t.Error("PVC.Granted did not rotate LRG")
	}
}
