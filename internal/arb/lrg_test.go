package arb

import (
	"testing"
	"testing/quick"

	"swizzleqos/internal/noc"
)

func req(input int) Request {
	return Request{Input: input, Class: noc.BestEffort, Packet: &noc.Packet{Src: input}}
}

func TestLRGStateInitialOrder(t *testing.T) {
	s := NewLRGState(4)
	want := []int{0, 1, 2, 3}
	got := s.Order()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("initial order = %v, want %v", got, want)
		}
	}
}

func TestLRGStateGrantMovesToBack(t *testing.T) {
	s := NewLRGState(4)
	s.Grant(0)
	if got := s.Order(); got[3] != 0 || got[0] != 1 {
		t.Fatalf("after granting 0, order = %v, want [1 2 3 0]", got)
	}
	s.Grant(2)
	if got := s.Order(); got[3] != 2 || got[2] != 0 {
		t.Fatalf("after granting 2, order = %v, want [1 3 0 2]", got)
	}
}

func TestLRGStatePick(t *testing.T) {
	s := NewLRGState(4)
	s.Grant(0) // order 1 2 3 0
	if got := s.Pick([]int{0, 3}); got != 3 {
		t.Errorf("Pick{0,3} = %d, want 3", got)
	}
	if got := s.Pick([]int{0}); got != 0 {
		t.Errorf("Pick{0} = %d, want 0", got)
	}
	if got := s.Pick(nil); got != -1 {
		t.Errorf("Pick{} = %d, want -1", got)
	}
}

func TestLRGStateHasPriorityAntisymmetric(t *testing.T) {
	s := NewLRGState(5)
	s.Grant(3)
	s.Grant(1)
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if a == b {
				continue
			}
			if s.HasPriority(a, b) == s.HasPriority(b, a) {
				t.Fatalf("HasPriority not antisymmetric for %d,%d", a, b)
			}
		}
	}
}

func TestLRGStateSetOrder(t *testing.T) {
	s := NewLRGState(3)
	if err := s.SetOrder([]int{2, 0, 1}); err != nil {
		t.Fatalf("SetOrder: %v", err)
	}
	if s.Rank(2) != 0 || s.Rank(0) != 1 || s.Rank(1) != 2 {
		t.Fatalf("ranks after SetOrder: %d %d %d", s.Rank(0), s.Rank(1), s.Rank(2))
	}
	if err := s.SetOrder([]int{0, 0, 1}); err == nil {
		t.Error("SetOrder accepted a non-permutation")
	}
	if err := s.SetOrder([]int{0, 1}); err == nil {
		t.Error("SetOrder accepted a short order")
	}
	if err := s.SetOrder([]int{0, 1, 3}); err == nil {
		t.Error("SetOrder accepted an out-of-range value")
	}
}

func TestLRGStateRankInvariant(t *testing.T) {
	// Property: after any grant sequence, rank is the inverse of order.
	f := func(grants []uint8) bool {
		s := NewLRGState(6)
		for _, g := range grants {
			s.Grant(int(g % 6))
		}
		for pos, in := range s.Order() {
			if s.Rank(in) != pos {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLRGArbiterPicksLeastRecentlyGranted(t *testing.T) {
	a := NewLRG(4)
	reqs := []Request{req(2), req(1), req(3)}
	w := a.Arbitrate(0, reqs)
	if reqs[w].Input != 1 {
		t.Fatalf("winner = input %d, want 1", reqs[w].Input)
	}
	a.Granted(0, reqs[w])
	w = a.Arbitrate(1, reqs)
	if reqs[w].Input != 2 {
		t.Fatalf("second winner = input %d, want 2", reqs[w].Input)
	}
}

func TestLRGArbiterNoRequests(t *testing.T) {
	a := NewLRG(4)
	if w := a.Arbitrate(0, nil); w != -1 {
		t.Fatalf("Arbitrate(nil) = %d, want -1", w)
	}
}

func TestLRGArbiterFairnessUnderSaturation(t *testing.T) {
	// With all inputs always requesting, LRG must rotate through every
	// input: over n*k grants each input wins exactly k times.
	const n, rounds = 8, 100
	a := NewLRG(n)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = req(i)
	}
	wins := make([]int, n)
	for g := 0; g < n*rounds; g++ {
		w := a.Arbitrate(noc.Cycle(g), reqs)
		wins[reqs[w].Input]++
		a.Granted(noc.Cycle(g), reqs[w])
	}
	for i, w := range wins {
		if w != rounds {
			t.Errorf("input %d won %d times, want %d", i, w, rounds)
		}
	}
}

func TestNewLRGStatePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLRGState(0) did not panic")
		}
	}()
	NewLRGState(0)
}
