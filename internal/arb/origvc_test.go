package arb

import (
	"math"
	"testing"

	"swizzleqos/internal/noc"
)

func gbPacket(src int, length int) *noc.Packet {
	return &noc.Packet{Src: src, Class: noc.GuaranteedBandwidth, Length: length}
}

func TestOrigVCStampsFollowAlgorithm(t *testing.T) {
	// Steps 1-3 of the quoted algorithm: auxVC <- max(auxVC, now) + Vtick.
	a := NewOrigVC(2, []noc.VTime{100, 50})

	p1 := gbPacket(0, 8)
	a.PacketArrived(10, p1)
	if p1.Stamp != 110 {
		t.Fatalf("first stamp = %d, want max(0,10)+100 = 110", p1.Stamp)
	}

	// Back-to-back arrival: virtual clock is ahead of real time, so the
	// stamp builds on auxVC, not on now.
	p2 := gbPacket(0, 8)
	a.PacketArrived(11, p2)
	if p2.Stamp != 210 {
		t.Fatalf("second stamp = %d, want 110+100 = 210", p2.Stamp)
	}

	// After a long idle period the clock snaps forward to real time,
	// preventing banked priority (the anti-burst rule of step 1).
	p3 := gbPacket(0, 8)
	a.PacketArrived(1000, p3)
	if p3.Stamp != 1100 {
		t.Fatalf("post-idle stamp = %d, want 1000+100 = 1100", p3.Stamp)
	}
}

func TestOrigVCTransmitsInStampOrder(t *testing.T) {
	a := NewOrigVC(2, []noc.VTime{100, 20})
	p0 := gbPacket(0, 8)
	p1 := gbPacket(1, 8)
	a.PacketArrived(0, p0) // stamp 100
	a.PacketArrived(0, p1) // stamp 20
	reqs := []Request{
		{Input: 0, Class: noc.GuaranteedBandwidth, Packet: p0},
		{Input: 1, Class: noc.GuaranteedBandwidth, Packet: p1},
	}
	w := a.Arbitrate(1, reqs)
	if reqs[w].Input != 1 {
		t.Fatalf("winner %d, want input 1 (smaller stamp)", reqs[w].Input)
	}
}

func TestOrigVCTieBrokenByLRG(t *testing.T) {
	a := NewOrigVC(2, []noc.VTime{50, 50})
	p0, p1 := gbPacket(0, 8), gbPacket(1, 8)
	a.PacketArrived(0, p0)
	a.PacketArrived(0, p1)
	if p0.Stamp != p1.Stamp {
		t.Fatalf("stamps differ: %d vs %d", p0.Stamp, p1.Stamp)
	}
	reqs := []Request{
		{Input: 0, Class: noc.GuaranteedBandwidth, Packet: p0},
		{Input: 1, Class: noc.GuaranteedBandwidth, Packet: p1},
	}
	w := a.Arbitrate(1, reqs)
	if reqs[w].Input != 0 {
		t.Fatalf("tie winner %d, want 0 (initial LRG order)", reqs[w].Input)
	}
	a.Granted(1, reqs[w])
	w = a.Arbitrate(2, reqs)
	if reqs[w].Input != 1 {
		t.Fatalf("after grant, tie winner %d, want 1", reqs[w].Input)
	}
}

func TestOrigVCUnreservedAlwaysLoses(t *testing.T) {
	a := NewOrigVC(2, []noc.VTime{0, 1 << 30})
	p0, p1 := gbPacket(0, 8), gbPacket(1, 8)
	a.PacketArrived(0, p0)
	a.PacketArrived(0, p1)
	if p0.Stamp != math.MaxUint64 {
		t.Fatalf("unreserved stamp = %d, want MaxUint64", p0.Stamp)
	}
	reqs := []Request{
		{Input: 0, Class: noc.GuaranteedBandwidth, Packet: p0},
		{Input: 1, Class: noc.GuaranteedBandwidth, Packet: p1},
	}
	if w := a.Arbitrate(1, reqs); reqs[w].Input != 1 {
		t.Fatalf("reserved flow must beat unreserved flow")
	}
}

// origVCWait measures how long a single packet from a flow with the given
// Vtick waits behind a saturated high-rate competitor (Vtick 27) when both
// share one output serving 8-flit packets.
func origVCWait(t *testing.T, lowVtick noc.VTime) noc.Cycle {
	t.Helper()
	a := NewOrigVC(2, []noc.VTime{lowVtick, 27})
	low := gbPacket(0, 8)
	a.PacketArrived(0, low)
	now := noc.Cycle(0)
	for served := 0; ; served++ {
		high := gbPacket(1, 8)
		a.PacketArrived(now, high)
		reqs := []Request{
			{Input: 0, Class: noc.GuaranteedBandwidth, Packet: low},
			{Input: 1, Class: noc.GuaranteedBandwidth, Packet: high},
		}
		w := a.Arbitrate(now, reqs)
		a.Granted(now, reqs[w])
		if reqs[w].Input == 0 {
			return now
		}
		now += 9 // 8 flits + arbitration
		if served > 10000 {
			t.Fatal("low-rate flow starved beyond plausibility")
		}
	}
}

func TestOrigVCLatencyCoupling(t *testing.T) {
	// The drawback motivating SSVC (§2.2): with exact stamps, a
	// low-rate flow's packet waits until the competitor's virtual clock
	// overtakes its stamp, so the wait grows with the flow's Vtick
	// (inverse reserved rate). Halving the reserved rate should roughly
	// double the wait.
	w800 := origVCWait(t, 800)
	w1600 := origVCWait(t, 1600)
	if w800 < 100 {
		t.Fatalf("wait at Vtick 800 = %d cycles; expected a substantial stall", w800)
	}
	ratio := float64(w1600) / float64(w800)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("wait(1600)/wait(800) = %.2f (%d vs %d), want ~2: latency must scale with 1/rate", ratio, w1600, w800)
	}
}

func TestOrigVCPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOrigVC with wrong vtick count did not panic")
		}
	}()
	NewOrigVC(4, []noc.VTime{1, 2})
}
