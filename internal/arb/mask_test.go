package arb

import (
	"testing"

	"swizzleqos/internal/traffic"
)

func TestMaskBasics(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 130} {
		m := make([]uint64, MaskWords(n))
		if MaskAny(m) {
			t.Fatalf("n=%d: empty mask reports a set bit", n)
		}
		if MaskFirst(m) != -1 {
			t.Fatalf("n=%d: MaskFirst on empty mask != -1", n)
		}
		for i := 0; i < n; i++ {
			MaskSet(m, i)
			if !MaskHas(m, i) {
				t.Fatalf("n=%d: bit %d not set", n, i)
			}
		}
		if MaskCount(m) != n {
			t.Fatalf("n=%d: count %d", n, MaskCount(m))
		}
		for i := 0; i < n; i += 2 {
			MaskClear(m, i)
		}
		for i := 0; i < n; i++ {
			if MaskHas(m, i) != (i%2 == 1) {
				t.Fatalf("n=%d: bit %d = %v after clearing evens", n, i, MaskHas(m, i))
			}
		}
		MaskZero(m)
		if MaskAny(m) {
			t.Fatalf("n=%d: MaskZero left bits", n)
		}
	}
}

func TestMaskNextFrom(t *testing.T) {
	const n = 130
	m := make([]uint64, MaskWords(n))
	MaskSet(m, 7)
	MaskSet(m, 64)
	MaskSet(m, 129)
	cases := []struct{ from, want int }{
		{0, 7}, {7, 7}, {8, 64}, {64, 64}, {65, 129}, {129, 129},
	}
	for _, c := range cases {
		if got := MaskNextFrom(m, c.from); got != c.want {
			t.Errorf("MaskNextFrom(from=%d) = %d, want %d", c.from, got, c.want)
		}
	}
	// Wrap-around: nothing at or above from.
	m2 := make([]uint64, MaskWords(n))
	MaskSet(m2, 3)
	if got := MaskNextFrom(m2, 100); got != 3 {
		t.Errorf("wrap: got %d, want 3", got)
	}
	if got := MaskNextFrom(make([]uint64, MaskWords(n)), 10); got != -1 {
		t.Errorf("empty: got %d, want -1", got)
	}
	// Exhaustive cross-check against a linear scan.
	rng := traffic.NewRNG(42)
	for trial := 0; trial < 200; trial++ {
		MaskZero(m)
		for i := 0; i < n; i++ {
			if rng.Bernoulli(0.2) {
				MaskSet(m, i)
			}
		}
		for from := 0; from < n; from++ {
			want := -1
			for k := 0; k < n; k++ {
				if i := (from + k) % n; MaskHas(m, i) {
					// The rotated reference: first set bit at or after
					// from, wrapping.
					want = i
					break
				}
			}
			if got := MaskNextFrom(m, from); got != want {
				t.Fatalf("trial %d from %d: got %d, want %d", trial, from, got, want)
			}
		}
	}
}

// TestLRGPlanesMatchRanks checks the rank bitplanes stay consistent with
// the rank array across random grant sequences and explicit orders.
// Sizes at or below planeThreshold run the scalar path and keep no
// planes, so only larger sizes are checked here; the scalar fallback is
// covered by TestMinRankInMatchesPick and the differential fuzz.
func TestLRGPlanesMatchRanks(t *testing.T) {
	rng := traffic.NewRNG(7)
	for _, n := range []int{planeThreshold + 1, 16, 63, 64, 65, 130} {
		s := NewLRGState(n)
		check := func(step string) {
			t.Helper()
			for i := 0; i < n; i++ {
				got := 0
				for b := range s.planes {
					if MaskHas(s.planes[b], i) {
						got |= 1 << uint(b)
					}
				}
				if got != s.rank[i] {
					t.Fatalf("n=%d %s: input %d plane rank %d != rank %d", n, step, i, got, s.rank[i])
				}
			}
		}
		check("initial")
		for g := 0; g < 4*n; g++ {
			s.Grant(rng.Intn(n))
			check("after grant")
		}
		// SetOrder rebuilds.
		order := s.Order()
		for i := range order {
			j := rng.Intn(i + 1)
			order[i], order[j] = order[j], order[i]
		}
		if err := s.SetOrder(order); err != nil {
			t.Fatal(err)
		}
		check("after SetOrder")
	}
}

// TestMinRankInMatchesPick compares the word-parallel selection against
// the element-wise Pick across random masks and LRG states.
func TestMinRankInMatchesPick(t *testing.T) {
	rng := traffic.NewRNG(99)
	for _, n := range []int{1, 2, 3, 8, 63, 64, 65, 130, 257} {
		s := NewLRGState(n)
		mask := make([]uint64, MaskWords(n))
		var cand []int
		for trial := 0; trial < 300; trial++ {
			for g := 0; g < 3; g++ {
				s.Grant(rng.Intn(n))
			}
			MaskZero(mask)
			cand = cand[:0]
			for i := 0; i < n; i++ {
				if rng.Bernoulli(0.3) {
					MaskSet(mask, i)
					cand = append(cand, i)
				}
			}
			want := s.Pick(cand)
			if got := s.MinRankIn(mask); got != want {
				t.Fatalf("n=%d trial %d: MinRankIn=%d Pick=%d (order %v)", n, trial, got, want, s.Order())
			}
		}
	}
}

// TestLRGArbitrateWordParallel drives the dense word-parallel path of
// LRG.Arbitrate against the element-wise decision.
func TestLRGArbitrateWordParallel(t *testing.T) {
	rng := traffic.NewRNG(5)
	for _, n := range []int{8, 64, 130} {
		a := NewLRG(n)
		var reqs []Request
		for trial := 0; trial < 200; trial++ {
			reqs = reqs[:0]
			for i := 0; i < n; i++ {
				if rng.Bernoulli(0.5) {
					reqs = append(reqs, Request{Input: i})
				}
			}
			want, wantRank := -1, n
			for i, r := range reqs {
				if rk := a.state.Rank(r.Input); rk < wantRank {
					want, wantRank = i, rk
				}
			}
			got := a.Arbitrate(0, reqs)
			if got != want {
				t.Fatalf("n=%d trial %d: got %d, want %d", n, trial, got, want)
			}
			if got >= 0 {
				a.Granted(0, reqs[got])
			}
		}
	}
}
