package arb

import (
	"fmt"

	"swizzleqos/internal/noc"
)

// RoundRobin is a rotating-priority arbiter: the pointer starts one past
// the last granted input, and the first requesting input at or after the
// pointer wins. Like LRG it converges to an equal bandwidth split under
// congestion but can be unfair over short windows when request patterns
// correlate with the pointer position.
type RoundRobin struct {
	//ssvc:range n 1..4096
	n int
	// next is the highest-priority input this cycle.
	//
	//ssvc:range next 0..4095
	next int
}

// NewRoundRobin returns a round-robin arbiter over n inputs.
func NewRoundRobin(n int) *RoundRobin {
	if n <= 0 || n > 4096 {
		panic(fmt.Sprintf("arb: round robin size %d outside [1,4096]", n))
	}
	return &RoundRobin{n: n}
}

// Arbitrate implements Arbiter.
//
//ssvc:hotpath
func (a *RoundRobin) Arbitrate(now noc.Cycle, reqs []Request) int {
	if len(reqs) == 0 {
		return -1
	}
	best, bestDist := -1, a.n
	for i, r := range reqs {
		d := (r.Input - a.next + a.n) % a.n
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Granted implements Arbiter.
func (a *RoundRobin) Granted(now noc.Cycle, req Request) {
	a.next = (req.Input + 1) % a.n
}

// Tick implements Arbiter.
func (a *RoundRobin) Tick(now noc.Cycle) {}

// MultiLevel is the fixed-priority message-level QoS of the prior Swizzle
// Switch design [14]: each request carries a priority level and the highest
// level always wins, with LRG breaking ties inside a level.
//
// The paper lists its three shortcomings (§2.2): inputs cannot control how
// much bandwidth a level receives, low levels can starve, and the original
// implementation needed two arbitration cycles. It is included as a
// starvation baseline for the ablation benches.
type MultiLevel struct {
	levels func(Request) int // maps a request to its priority level
	state  *LRGState
}

// NewMultiLevel returns a fixed-priority arbiter over n inputs. levels maps
// each request to its priority level (higher wins); if nil, the request's
// traffic class is used as the level, mirroring BE < GB < GL strict
// priority without any bandwidth regulation.
func NewMultiLevel(n int, levels func(Request) int) *MultiLevel {
	if levels == nil {
		levels = func(r Request) int { return int(r.Class) }
	}
	return &MultiLevel{levels: levels, state: NewLRGState(n)}
}

// Arbitrate implements Arbiter.
//
//ssvc:hotpath
func (a *MultiLevel) Arbitrate(now noc.Cycle, reqs []Request) int {
	best := -1
	bestLevel := -1
	bestRank := a.state.Size()
	for i, r := range reqs {
		lv := a.levels(r)
		rk := a.state.Rank(r.Input)
		if lv > bestLevel || (lv == bestLevel && rk < bestRank) {
			best, bestLevel, bestRank = i, lv, rk
		}
	}
	return best
}

// Granted implements Arbiter.
func (a *MultiLevel) Granted(now noc.Cycle, req Request) { a.state.Grant(req.Input) }

// Tick implements Arbiter.
func (a *MultiLevel) Tick(now noc.Cycle) {}
