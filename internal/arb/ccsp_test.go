package arb

import (
	"testing"

	"swizzleqos/internal/noc"
)

func ccspReq(input, length int) Request {
	return Request{Input: input, Class: noc.GuaranteedBandwidth,
		Packet: &noc.Packet{Src: input, Class: noc.GuaranteedBandwidth, Length: length}}
}

func TestCCSPStaticPriorityAmongEligible(t *testing.T) {
	// Input 1 has the higher static priority; both start fully
	// provisioned.
	a := NewCCSP([]float64{0.1, 0.1}, []float64{8, 8}, []int{1, 0}, false)
	reqs := []Request{ccspReq(0, 8), ccspReq(1, 8)}
	if w := a.Arbitrate(0, reqs); reqs[w].Input != 1 {
		t.Fatalf("winner %d, want static-priority input 1", reqs[w].Input)
	}
}

func TestCCSPIneligibleWithoutCredit(t *testing.T) {
	a := NewCCSP([]float64{0.01, 0.5}, []float64{8, 8}, []int{0, 1}, false)
	reqs := []Request{ccspReq(0, 8), ccspReq(1, 8)}
	// Drain input 0's credit.
	a.Granted(0, reqs[0])
	if a.Credit(0) != 0 {
		t.Fatalf("credit = %g, want 0", a.Credit(0))
	}
	// Despite its higher priority, input 0 is ineligible; input 1 wins.
	if w := a.Arbitrate(1, reqs); reqs[w].Input != 1 {
		t.Fatalf("winner %d, want eligible input 1", reqs[w].Input)
	}
	// Credits re-accrue with time: 0.01/cycle needs 800 cycles for 8
	// flits.
	a.Tick(900)
	if w := a.Arbitrate(901, reqs); reqs[w].Input != 0 {
		t.Fatalf("after re-accrual, winner %d, want input 0", reqs[w].Input)
	}
}

func TestCCSPNonWorkConservingIdles(t *testing.T) {
	a := NewCCSP([]float64{0.01}, []float64{4}, []int{0}, false)
	reqs := []Request{ccspReq(0, 4)}
	a.Granted(0, reqs[0]) // drain
	if w := a.Arbitrate(1, reqs); w != -1 {
		t.Fatalf("non-work-conserving CCSP granted an ineligible input")
	}
}

func TestCCSPWorkConservingSlack(t *testing.T) {
	a := NewCCSP([]float64{0.01}, []float64{4}, []int{0}, true)
	reqs := []Request{ccspReq(0, 4)}
	a.Granted(0, reqs[0])
	w := a.Arbitrate(1, reqs)
	if w != 0 {
		t.Fatalf("work-conserving CCSP wasted a slack cycle")
	}
	a.Granted(1, reqs[0])
	if a.Credit(0) >= 0 {
		t.Fatalf("slack service must drive credit negative, got %g", a.Credit(0))
	}
}

func TestCCSPCreditCap(t *testing.T) {
	a := NewCCSP([]float64{0.5}, []float64{8}, []int{0}, false)
	a.Tick(1000)
	if a.Credit(0) != 8 {
		t.Fatalf("credit = %g, want capped at 8", a.Credit(0))
	}
}

func TestCCSPDecouplesLatencyFromRate(t *testing.T) {
	// The §5 claim: a low-rate, high-priority requester is served ahead
	// of a saturated high-rate one whenever it is eligible.
	a := NewCCSP([]float64{0.02, 0.6}, []float64{8, 16}, []int{0, 1}, true)
	lowServedImmediately := 0
	trials := 0
	now := noc.Cycle(0)
	for step := 0; step < 200; step++ {
		// The high-rate input always requests; the low-rate one
		// requests every 50th step (idle otherwise, re-earning credit).
		reqs := []Request{ccspReq(1, 8)}
		lowRequesting := step%50 == 0
		if lowRequesting {
			reqs = append(reqs, ccspReq(0, 8))
			trials++
		}
		w := a.Arbitrate(now, reqs)
		if lowRequesting && reqs[w].Input == 0 {
			lowServedImmediately++
		}
		a.Granted(now, reqs[w])
		now += 9
		a.Tick(now)
	}
	if lowServedImmediately < trials*9/10 {
		t.Fatalf("low-rate high-priority input served immediately only %d/%d times",
			lowServedImmediately, trials)
	}
}

func TestCCSPPanicsOnBadProvisioning(t *testing.T) {
	for _, f := range []func(){
		func() { NewCCSP(nil, nil, nil, false) },
		func() { NewCCSP([]float64{0.1}, []float64{8, 8}, []int{0}, false) },
		func() { NewCCSP([]float64{1.5}, []float64{8}, []int{0}, false) },
		func() { NewCCSP([]float64{0.1}, []float64{0.5}, []int{0}, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAgeBasedOldestFirst(t *testing.T) {
	a := NewAgeBased(4)
	old := &noc.Packet{Src: 2, EnqueuedAt: 5, Length: 4}
	young := &noc.Packet{Src: 0, EnqueuedAt: 50, Length: 4}
	reqs := []Request{
		{Input: 0, Class: noc.BestEffort, Packet: young},
		{Input: 2, Class: noc.BestEffort, Packet: old},
	}
	if w := a.Arbitrate(60, reqs); reqs[w].Input != 2 {
		t.Fatalf("winner %d, want the older packet's input 2", reqs[w].Input)
	}
}

func TestAgeBasedTieUsesLRG(t *testing.T) {
	a := NewAgeBased(2)
	p0 := &noc.Packet{Src: 0, EnqueuedAt: 7, Length: 4}
	p1 := &noc.Packet{Src: 1, EnqueuedAt: 7, Length: 4}
	reqs := []Request{
		{Input: 0, Class: noc.BestEffort, Packet: p0},
		{Input: 1, Class: noc.BestEffort, Packet: p1},
	}
	w := a.Arbitrate(10, reqs)
	if reqs[w].Input != 0 {
		t.Fatalf("tie winner %d, want 0", reqs[w].Input)
	}
	a.Granted(10, reqs[w])
	if w := a.Arbitrate(11, reqs); reqs[w].Input != 1 {
		t.Fatalf("second tie winner %d, want 1", reqs[w].Input)
	}
}

func TestTDMServesOnlySlotOwner(t *testing.T) {
	a := NewTDM(UniformTDMTable(2, 3)) // slots: 0,0,0,1,1,1 repeating
	reqs := []Request{ccspReq(1, 2)}
	// Cycles 0-2 belong to input 0: input 1's request is wasted.
	for now := noc.Cycle(0); now < 3; now++ {
		if w := a.Arbitrate(now, reqs); w != -1 {
			t.Fatalf("cycle %d: slot owner 0 absent but input 1 served", now)
		}
	}
	// Cycles 3-5 belong to input 1.
	if w := a.Arbitrate(3, reqs); w != 0 {
		t.Fatal("slot owner not served in its slot")
	}
}

func TestTDMBandwidthFollowsSlotCounts(t *testing.T) {
	// Input 0 owns two slots per frame, input 1 one: 2:1 shares when
	// both are backlogged.
	a := NewTDM([]int{0, 0, 1})
	wins := [2]int{}
	reqs := []Request{ccspReq(0, 1), ccspReq(1, 1)}
	for now := noc.Cycle(0); now < 300; now++ {
		if w := a.Arbitrate(now, reqs); w >= 0 {
			wins[reqs[w].Input]++
			a.Granted(now, reqs[w])
		}
	}
	if wins[0] != 200 || wins[1] != 100 {
		t.Fatalf("wins = %v, want [200 100]", wins)
	}
}

func TestTDMPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewTDM(nil) },
		func() { NewTDM([]int{-1}) },
		func() { UniformTDMTable(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
