package arb

import (
	"testing"

	"swizzleqos/internal/noc"
)

func TestWFQServesByFinishTime(t *testing.T) {
	a := NewWFQ([]float64{0.1, 0.9})
	p0, p1 := gbPacket(0, 8), gbPacket(1, 8)
	a.PacketArrived(0, p0) // finish 8/0.1 = 80
	a.PacketArrived(0, p1) // finish 8/0.9 = 8.9
	reqs := []Request{
		{Input: 0, Class: noc.GuaranteedBandwidth, Packet: p0},
		{Input: 1, Class: noc.GuaranteedBandwidth, Packet: p1},
	}
	if w := a.Arbitrate(1, reqs); reqs[w].Input != 1 {
		t.Fatalf("heavier flow's earlier finish time must win")
	}
}

func TestWFQBandwidthProportionalToWeights(t *testing.T) {
	// Saturated inputs with weights 3:1 should receive grants 3:1.
	a := NewWFQ([]float64{3, 1})
	wins := make([]int, 2)
	heads := []*noc.Packet{gbPacket(0, 4), gbPacket(1, 4)}
	a.PacketArrived(0, heads[0])
	a.PacketArrived(0, heads[1])
	for g := 0; g < 400; g++ {
		now := noc.Cycle(g)
		reqs := []Request{
			{Input: 0, Class: noc.GuaranteedBandwidth, Packet: heads[0]},
			{Input: 1, Class: noc.GuaranteedBandwidth, Packet: heads[1]},
		}
		w := a.Arbitrate(now, reqs)
		in := reqs[w].Input
		wins[in]++
		a.Granted(now, reqs[w])
		heads[in] = gbPacket(in, 4)
		a.PacketArrived(now, heads[in])
		a.Tick(now)
	}
	share := float64(wins[0]) / 400
	if share < 0.72 || share > 0.78 {
		t.Fatalf("weight-3 flow won %.3f of grants, want ~0.75", share)
	}
}

func TestWFQHandlesUnseenPacket(t *testing.T) {
	// A packet that never passed PacketArrived is stamped lazily rather
	// than crashing the arbitration.
	a := NewWFQ([]float64{1, 1})
	p := gbPacket(0, 8)
	reqs := []Request{{Input: 0, Class: noc.GuaranteedBandwidth, Packet: p}}
	if w := a.Arbitrate(5, reqs); w != 0 {
		t.Fatalf("Arbitrate = %d, want 0", w)
	}
}

func TestWFQGrantedReleasesStamp(t *testing.T) {
	a := NewWFQ([]float64{1})
	p := gbPacket(0, 8)
	a.PacketArrived(0, p)
	if len(a.stamps) != 1 {
		t.Fatalf("stamp table size %d, want 1", len(a.stamps))
	}
	a.Granted(0, Request{Input: 0, Class: noc.GuaranteedBandwidth, Packet: p})
	if len(a.stamps) != 0 {
		t.Fatalf("stamp table size %d after grant, want 0 (no leak)", len(a.stamps))
	}
}

func TestWFQPanicsOnBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWFQ with non-positive weight did not panic")
		}
	}()
	NewWFQ([]float64{1, 0})
}
