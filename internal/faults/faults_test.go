package faults

import (
	"math"
	"testing"

	"swizzleqos/internal/noc"
)

func TestBeginCycleFiresInOrder(t *testing.T) {
	in := New(Config{FailStops: []FailStop{
		{Input: false, Port: 2, At: 50},
		{Input: true, Port: 1, At: 10},
		{Input: false, Port: 0, At: 10},
	}})
	if fired := in.BeginCycle(9); fired != nil {
		t.Fatalf("cycle 9 fired %v, want nothing", fired)
	}
	fired := in.BeginCycle(10)
	if len(fired) != 2 {
		t.Fatalf("cycle 10 fired %d fail-stops, want 2", len(fired))
	}
	if !fired[0].Input || fired[0].Port != 1 || fired[1].Input || fired[1].Port != 0 {
		t.Fatalf("cycle 10 fired %v in wrong order", fired)
	}
	if !in.InputDead(1) || !in.OutputDead(0) || in.OutputDead(2) {
		t.Fatal("dead-port state wrong after cycle 10")
	}
	if fired := in.BeginCycle(11); fired != nil {
		t.Fatalf("cycle 11 re-fired %v", fired)
	}
	if fired := in.BeginCycle(60); len(fired) != 1 || fired[0].Port != 2 {
		t.Fatalf("cycle 60 fired %v, want output 2", fired)
	}
	if !in.OutputDead(2) {
		t.Fatal("output 2 not dead after its fail-stop")
	}
	// Input and output id spaces must not collide.
	if in.InputDead(0) || in.InputDead(2) || in.OutputDead(1) {
		t.Fatal("dead-port state leaked across the input/output namespaces")
	}
}

func TestStallWindow(t *testing.T) {
	in := New(Config{Stalls: []StallWindow{{Port: 3, From: 100, Until: 103}}})
	if in.StallOutput(99, 3) || in.StallOutput(103, 3) || in.StallOutput(100, 2) {
		t.Fatal("stall outside window or port")
	}
	for now := noc.Cycle(100); now < 103; now++ {
		if !in.StallOutput(now, 3) {
			t.Fatalf("cycle %d: port 3 not stalled", now)
		}
	}
	if got := in.Totals().StallCycles; got != 3 {
		t.Fatalf("StallCycles = %d, want 3", got)
	}
}

func TestRetryBudgetAndBackoff(t *testing.T) {
	in := New(Config{MaxRetries: 3, BackoffBase: 4, BackoffCap: 10})
	p := &noc.Packet{ID: 1, Length: 8}
	wantHold := []noc.Cycle{1004, 1008, 1010} // 4, 8, then capped at 10
	for i, want := range wantHold {
		if !in.Retry(1000, p) {
			t.Fatalf("attempt %d: budget exhausted early", i+1)
		}
		if p.HoldUntil != want {
			t.Fatalf("attempt %d: HoldUntil = %d, want %d", i+1, p.HoldUntil, want)
		}
	}
	if in.Retry(1000, p) {
		t.Fatal("4th attempt allowed past MaxRetries=3")
	}
	c := in.Totals()
	if c.Retransmissions != 3 || c.Drops != 1 {
		t.Fatalf("counters = %+v, want 3 retransmissions, 1 drop", c)
	}
}

func TestRetryBackoffShiftOverflow(t *testing.T) {
	// A pathological retry count must not shift the delay past the cap
	// (or wrap to zero).
	in := New(Config{MaxRetries: 100, BackoffBase: 8, BackoffCap: 512})
	p := &noc.Packet{}
	p.Retries = 70 // delay would be 8<<70 without the guard
	if !in.Retry(0, p) {
		t.Fatal("budget should allow attempt 71")
	}
	if p.HoldUntil != 512 {
		t.Fatalf("HoldUntil = %d, want the 512 cap", p.HoldUntil)
	}
}

func TestCorruptArrivalDeterminism(t *testing.T) {
	roll := func() (hits int, pattern []bool) {
		in := New(Config{Seed: 7, CorruptProb: 0.25})
		for i := 0; i < 400; i++ {
			c := in.CorruptArrival(&noc.Packet{})
			pattern = append(pattern, c)
			if c {
				hits++
			}
		}
		return hits, pattern
	}
	h1, p1 := roll()
	h2, p2 := roll()
	if h1 != h2 {
		t.Fatalf("corruption stream not reproducible: %d vs %d hits", h1, h2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("corruption decision %d differs between identical injectors", i)
		}
	}
	if h1 < 50 || h1 > 150 {
		t.Fatalf("%d corruptions in 400 draws at p=0.25 is implausible", h1)
	}
}

func TestCorruptArrivalDisabled(t *testing.T) {
	in := New(Config{Seed: 7}) // CorruptProb 0
	for i := 0; i < 100; i++ {
		if in.CorruptArrival(&noc.Packet{}) {
			t.Fatal("corruption fired with probability 0")
		}
	}
	if in.Totals().Corruptions != 0 {
		t.Fatal("corruption counted with probability 0")
	}
}

func TestRedistribute(t *testing.T) {
	rates := []float64{0.40, 0.20, 0.10, 0, 0.05}
	out := Redistribute(rates, func(i int) bool { return i == 1 })
	if out[1] != 0 {
		t.Fatalf("failed flow kept rate %g", out[1])
	}
	// Total reserved bandwidth is preserved.
	sumBefore, sumAfter := 0.0, 0.0
	for i := range rates {
		sumBefore += rates[i]
		sumAfter += out[i]
	}
	if math.Abs(sumBefore-sumAfter) > 1e-12 {
		t.Fatalf("total rate changed: %g -> %g", sumBefore, sumAfter)
	}
	// Survivors scale proportionally: 0.20 freed over 0.55 surviving.
	scale := 1 + 0.20/0.55
	for _, i := range []int{0, 2, 4} {
		if math.Abs(out[i]-rates[i]*scale) > 1e-12 {
			t.Fatalf("flow %d: rate %g, want %g", i, out[i], rates[i]*scale)
		}
	}
	// Zero-rate (best-effort) flows neither give nor take.
	if out[3] != 0 {
		t.Fatalf("zero-rate flow gained %g", out[3])
	}
	// Everyone failed: nothing to absorb, all zero.
	all := Redistribute([]float64{0.5, 0.5}, func(int) bool { return true })
	if all[0] != 0 || all[1] != 0 {
		t.Fatalf("no survivors but rates %v", all)
	}
}

func TestConfigValidate(t *testing.T) {
	ok := Config{
		CorruptProb: 0.1,
		Stalls:      []StallWindow{{Port: 1, From: 5, Until: 9}},
		FailStops:   []FailStop{{Input: true, Port: 3, At: 7}, {Port: 0, At: 2}},
	}
	if err := ok.Validate(4, 2); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{CorruptProb: -0.1},
		{CorruptProb: 1.5},
		{Stalls: []StallWindow{{Port: 2, From: 0, Until: 1}}},
		{Stalls: []StallWindow{{Port: 0, From: 9, Until: 5}}},
		{FailStops: []FailStop{{Input: true, Port: 4}}},
		{FailStops: []FailStop{{Port: 2}}},
	}
	for i, c := range bad {
		if err := c.Validate(4, 2); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}
