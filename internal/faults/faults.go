// Package faults is a deterministic, seed-driven fault-injection layer
// for the fabric engines. It models three fault kinds on top of the
// shared kernel in internal/fabric:
//
//   - Transient flit corruption on a link. A modeled CRC at the receiver
//     detects the corrupted packet, which is NACKed back onto the head of
//     its input queue (the existing PushFront preemption path), retried
//     under a bounded budget with exponential backoff in cycles, and
//     finally counted as dropped when the budget is exhausted. This is
//     the closed retransmission loop of Feedback Output Queuing applied
//     at the link level.
//
//   - Output-port stall for a cycle window: the port transmits nothing
//     and grants nothing while stalled (a transient brown-out — PLL
//     relock, downstream backpressure).
//
//   - Fail-stop of an input or output port for the rest of the run (a
//     dead link or node, as in the Tiny Tera port-fault model). Engines
//     flush packets parked toward a dead port and refuse new ones; the
//     crossbar additionally re-derives its SSVC Vticks so the failed
//     flows' reserved bandwidth is redistributed to surviving GB flows
//     (see Redistribute and core.SSVC.SetVticks).
//
// An Injector is owned by exactly one engine instance and consumes only
// its own RNG stream, so parallel sweeps stay byte-identical at any
// worker count. Every engine fault check is guarded by a nil test: an
// engine with no injector configured is bit-for-bit identical to one
// built before this package existed, and allocates nothing extra.
package faults

import (
	"fmt"
	"sort"

	"swizzleqos/internal/noc"
	"swizzleqos/internal/traffic"
)

// Default retry/backoff parameters (overridable via Config).
const (
	// DefaultMaxRetries is the retransmission budget per packet before a
	// corrupted packet is dropped.
	DefaultMaxRetries = 4
	// DefaultBackoffBase is the first retry delay in cycles; attempt k
	// waits Base<<(k-1) cycles, capped at DefaultBackoffCap.
	DefaultBackoffBase = 8
	// DefaultBackoffCap bounds the exponential backoff delay.
	DefaultBackoffCap = 512
)

// StallWindow stalls one output port for the half-open cycle interval
// [From, Until): while stalled the port neither transmits nor grants.
type StallWindow struct {
	Port  int
	From  noc.Cycle
	Until noc.Cycle
}

// FailStop kills one port at cycle At for the rest of the run. Input
// selects between the engine's input ports (sources) and output ports
// (channels). For the multi-hop engines ports are identified by their
// flattened id (router*portsPerRouter + port).
type FailStop struct {
	Input bool
	Port  int
	At    noc.Cycle
}

// Config is a complete, declarative fault schedule. The zero value
// injects nothing.
type Config struct {
	// Seed drives the corruption RNG stream. Independent of the
	// workload seeds: two engines with the same fault seed see the same
	// corruption decisions regardless of traffic.
	Seed uint64
	// CorruptProb is the per-arriving-packet probability that its CRC
	// check fails and it must be retransmitted. Zero disables corruption.
	CorruptProb float64
	// MaxRetries bounds retransmission attempts per packet
	// (DefaultMaxRetries if zero).
	MaxRetries int
	// BackoffBase is the first retry delay in cycles (DefaultBackoffBase
	// if zero); attempt k backs off BackoffBase<<(k-1) cycles.
	BackoffBase noc.Cycle
	// BackoffCap caps the backoff delay (DefaultBackoffCap if zero).
	BackoffCap noc.Cycle
	// Stalls lists output-port stall windows.
	Stalls []StallWindow
	// FailStops lists permanent port deaths.
	FailStops []FailStop
}

// Counters tallies injected faults and their outcomes.
type Counters struct {
	Corruptions     uint64 // CRC failures detected at a receiver
	Retransmissions uint64 // NACKed packets re-queued for retry
	Drops           uint64 // packets dropped after exhausting retries
	StallCycles     uint64 // output-cycles lost to stall windows
}

// Injector evaluates a Config cycle by cycle for one engine instance.
// Not safe for concurrent use, like the engines themselves.
type Injector struct {
	cfg  Config
	rng  *traffic.RNG
	rest []FailStop // pending fail-stops, sorted by At
	dead map[int]struct{}

	// Counters is exported state; engines surface it via FaultTotals.
	Counters
}

// New returns an injector for the given schedule. Fail-stops fire in At
// order (ties in listed order).
func New(cfg Config) *Injector {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = DefaultBackoffCap
	}
	rest := make([]FailStop, len(cfg.FailStops))
	copy(rest, cfg.FailStops)
	sort.SliceStable(rest, func(i, j int) bool { return rest[i].At < rest[j].At })
	return &Injector{
		cfg:  cfg,
		rng:  traffic.NewRNG(cfg.Seed),
		rest: rest,
		dead: make(map[int]struct{}, len(rest)),
	}
}

// Config returns the schedule the injector was built from (with defaults
// filled in).
func (in *Injector) Config() Config { return in.cfg }

// Totals returns a copy of the fault counter block.
func (in *Injector) Totals() Counters { return in.Counters }

// BeginCycle fires every fail-stop scheduled at or before now, marking
// the ports dead, and returns the batch that fired this cycle so the
// engine can flush state for them (buffers, in-flight transmissions,
// arbiter reservations). The returned slice aliases internal storage and
// is valid until the next call; in fault-free cycles it is nil and the
// call does no work and allocates nothing.
func (in *Injector) BeginCycle(now noc.Cycle) []FailStop {
	if len(in.rest) == 0 || in.rest[0].At > now {
		return nil
	}
	n := 0
	for n < len(in.rest) && in.rest[n].At <= now {
		in.dead[key(in.rest[n].Input, in.rest[n].Port)] = struct{}{}
		n++
	}
	fired := in.rest[:n]
	in.rest = in.rest[n:]
	return fired
}

func key(input bool, port int) int {
	if input {
		return ^port // inputs map to negative keys, outputs to non-negative
	}
	return port
}

// InputDead reports whether input port p has fail-stopped.
func (in *Injector) InputDead(p int) bool {
	_, ok := in.dead[key(true, p)]
	return ok
}

// OutputDead reports whether output port p has fail-stopped.
func (in *Injector) OutputDead(p int) bool {
	_, ok := in.dead[key(false, p)]
	return ok
}

// StallOutput reports whether output port p must stay silent this cycle
// because a stall window covers now. Each stalled port-cycle is counted
// exactly once; engines must consult it at most once per port per cycle.
func (in *Injector) StallOutput(now noc.Cycle, port int) bool {
	for _, w := range in.cfg.Stalls {
		if w.Port == port && now >= w.From && now < w.Until {
			in.StallCycles++
			return true
		}
	}
	return false
}

// CorruptArrival rolls the CRC check for a packet whose last flit just
// arrived over a link, returning true when the packet is corrupted and
// must be NACKed. Consumes one RNG draw per call, so call order must be
// deterministic (it is: engines iterate ports in fixed order).
func (in *Injector) CorruptArrival(p *noc.Packet) bool {
	if in.cfg.CorruptProb <= 0 {
		return false
	}
	if !in.rng.Bernoulli(in.cfg.CorruptProb) {
		return false
	}
	in.Corruptions++
	return true
}

// Retry charges one retransmission attempt to a corrupted packet. If the
// budget allows, it stamps the packet's backoff deadline
// (now + BackoffBase<<(attempt-1), capped at BackoffCap), counts a
// retransmission, and returns true: the engine re-queues the packet at
// the head of its input buffer. Otherwise it counts a drop and returns
// false: the engine must discard the packet via Hooks.Drop.
func (in *Injector) Retry(now noc.Cycle, p *noc.Packet) bool {
	p.Retries++
	if p.Retries > in.cfg.MaxRetries {
		in.Drops++
		return false
	}
	delay := noc.SatShl(in.cfg.BackoffBase, uint(p.Retries-1))
	if delay > in.cfg.BackoffCap {
		delay = in.cfg.BackoffCap
	}
	p.HoldUntil = now + delay
	in.Retransmissions++
	return true
}

// Redistribute implements the graceful-degradation bandwidth rule: the
// reserved rate of every failed flow is released and shared among the
// surviving reserved flows in proportion to their own reservations, so
// the total reserved fraction of the output channel is preserved.
// rates[i] is flow i's reserved rate; failed reports whether flow i died.
// Flows with zero rate (best-effort) neither give nor take.
func Redistribute(rates []float64, failed func(i int) bool) []float64 {
	out := make([]float64, len(rates))
	freed := 0.0
	surviving := 0.0
	for i, r := range rates {
		if failed(i) {
			freed += r
			continue
		}
		surviving += r
	}
	if surviving <= 0 {
		return out // nothing left to absorb the freed bandwidth
	}
	scale := 1 + freed/surviving
	for i, r := range rates {
		if failed(i) {
			continue
		}
		out[i] = r * scale
	}
	return out
}

// Validate reports a descriptive error for schedules that reference
// ports outside [0, numIn) x [0, numOut) or malformed windows.
func (c Config) Validate(numIn, numOut int) error {
	if c.CorruptProb < 0 || c.CorruptProb > 1 {
		return fmt.Errorf("faults: corruption probability %g outside [0,1]", c.CorruptProb)
	}
	for _, w := range c.Stalls {
		if w.Port < 0 || w.Port >= numOut {
			return fmt.Errorf("faults: stall port %d out of range [0,%d)", w.Port, numOut)
		}
		if w.Until < w.From {
			return fmt.Errorf("faults: stall window [%d,%d) inverted", w.From, w.Until)
		}
	}
	for _, f := range c.FailStops {
		n := numOut
		if f.Input {
			n = numIn
		}
		if f.Port < 0 || f.Port >= n {
			return fmt.Errorf("faults: fail-stop port %d out of range [0,%d)", f.Port, n)
		}
	}
	return nil
}
