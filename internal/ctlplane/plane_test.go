package ctlplane

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swizzleqos/internal/faults"
	"swizzleqos/internal/noc"
)

// testScript exercises every command type: leased and unleased GB adds,
// a GL add, a closed-loop source, rejections (over-budget, duplicate),
// resize, budget shrink, and a policy flip. The input fail-stop at
// cycle 7000 (testConfig) lands in the middle.
const testScript = `
@100  add gb 0 1 rate=0.3 len=8 load=0.5
@100  add gb 2 1 rate=0.3 len=8 lease=4000
@150  add gb 2 1 rate=0.1 len=8
@200  add gl 3 1 rate=0.04 len=4 latency=400 burst=2
@300  add gb 4 2 rate=0.4 len=8 users=4
@400  add gb 5 2 rate=0.9 len=8
@2000 resize 1 rate=0.2 lease=6000
@3000 add gb 6 3 rate=0.5 len=8 lease=3000
@8000 budget 1 share=0.25
@9000 policy reject
@9500 add gb 5 3 rate=0.2 len=8
`

const testTotal = noc.Cycle(12000)

func testConfig(shards int, withFaults bool) SimConfig {
	cfg := SimConfig{
		Radix:     8,
		Seed:      42,
		SnapEvery: 2000,
		Degrade:   true,
		Shards:    shards,
	}
	if withFaults {
		cfg.Faults = &faults.Config{Seed: 9, FailStops: []faults.FailStop{
			{Input: true, Port: 4, At: 7000}, // kills the closed-loop flow mid-run
		}}
	}
	return cfg
}

func testSchedule(t *testing.T) []Scheduled {
	t.Helper()
	sched, err := ParseScript(testScript)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// runScripted drives the plane exactly like the daemon's serve loop:
// scripted commands apply at their stamped cycles, entries already
// journaled before a crash (done) are skipped.
func runScripted(t *testing.T, p *Plane, sched []Scheduled, done map[string]bool, total noc.Cycle) {
	t.Helper()
	for {
		now := p.Now()
		for len(sched) > 0 && sched[0].At <= now {
			s := sched[0]
			sched = sched[1:]
			if done[s.Cmd.Tag] || s.At < now {
				continue
			}
			p.Apply(s.Cmd)
		}
		if now >= total {
			return
		}
		next := total
		if len(sched) > 0 && sched[0].At < next {
			next = sched[0].At
		}
		if err := p.Advance(noc.SatSub(next, now)); err != nil {
			t.Fatal(err)
		}
	}
}

// journaledRun executes the test scenario with a journal attached and
// returns the finished plane and the journal path.
func journaledRun(t *testing.T, dir string, total noc.Cycle, finish bool) (*Plane, string) {
	t.Helper()
	path := filepath.Join(dir, "journal.jsonl")
	jr, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(testConfig(0, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AttachJournal(jr, true); err != nil {
		t.Fatal(err)
	}
	runScripted(t, p, testSchedule(t), nil, total)
	if finish {
		if err := p.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	return p, path
}

// doneTags reads the script tags a journal already holds.
func doneTags(t *testing.T, path string) map[string]bool {
	t.Helper()
	recs, _, _, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	done := map[string]bool{}
	for _, rec := range recs {
		if rec.Kind == KindCmd && rec.Cmd != nil && rec.Cmd.Cmd.Tag != "" {
			done[rec.Cmd.Cmd.Tag] = true
		}
	}
	return done
}

func TestScenarioOutcomes(t *testing.T) {
	p, _ := journaledRun(t, t.TempDir(), testTotal, true)
	st := p.Stats()
	if st.Admitted == 0 || st.RejectedBudget == 0 || st.RejectedOther == 0 {
		t.Fatalf("scenario lost coverage: %+v", st)
	}
	if st.Expired == 0 {
		t.Fatalf("no lease expired: %+v", st)
	}
	if st.Revoked == 0 {
		t.Fatalf("the input fail-stop revoked nothing: %+v", st)
	}
	if p.Delivered() == 0 {
		t.Fatal("no packets delivered")
	}
}

func TestReplayReproducesRun(t *testing.T) {
	p, path := journaledRun(t, t.TempDir(), testTotal, true)
	recs, _, warn, err := ReadJournal(path)
	if err != nil || warn != "" {
		t.Fatalf("clean journal read: err=%v warn=%q", err, warn)
	}
	q, err := Rebuild(recs, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if q.TraceHash() != p.TraceHash() || q.Delivered() != p.Delivered() {
		t.Fatalf("replay diverged: hash %016x vs %016x, delivered %d vs %d",
			q.TraceHash(), p.TraceHash(), q.Delivered(), p.Delivered())
	}
	if q.Counters() != p.Counters() {
		t.Fatalf("replay counters diverged:\n%+v\n%+v", q.Counters(), p.Counters())
	}
	if !tableStateEqual(q.Table().State(), p.Table().State()) {
		t.Fatalf("replay admission state diverged")
	}
}

// TestKillRecoverContinue kills the run at many mid-run cycles (journal
// written but neither finished nor cleanly shut down), recovers from
// the journal, re-runs the remaining script, and requires the final
// state to be bit-for-bit the uninterrupted run's — leases, faults, and
// budget churn included.
func TestKillRecoverContinue(t *testing.T) {
	ref, _ := journaledRun(t, t.TempDir(), testTotal, true)
	for _, kill := range []noc.Cycle{0, 99, 2500, 5000, 6999, 7001, 9501, 11999} {
		dir := t.TempDir()
		_, path := journaledRun(t, dir, kill, false) // killed: no end record
		p, warn, err := RecoverFile(path, ReplayOptions{})
		if err != nil {
			t.Fatalf("kill@%d: %v", kill.Uint(), err)
		}
		if warn != "" {
			t.Fatalf("kill@%d: unexpected torn-tail warning %q", kill.Uint(), warn)
		}
		if p == nil {
			t.Fatalf("kill@%d: no plane recovered", kill.Uint())
		}
		if p.Now() > kill {
			t.Fatalf("kill@%d: recovered beyond the kill point, at %d", kill.Uint(), p.Now().Uint())
		}
		runScripted(t, p, testSchedule(t), doneTags(t, path), testTotal)
		if err := p.Finish(); err != nil {
			t.Fatalf("kill@%d: %v", kill.Uint(), err)
		}
		if p.TraceHash() != ref.TraceHash() || p.Delivered() != ref.Delivered() {
			t.Fatalf("kill@%d: resumed run diverged: hash %016x vs %016x, delivered %d vs %d",
				kill.Uint(), p.TraceHash(), ref.TraceHash(), p.Delivered(), ref.Delivered())
		}
		if p.Counters() != ref.Counters() {
			t.Fatalf("kill@%d: counters diverged", kill.Uint())
		}
		if err := p.CloseJournal(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornJournalRecovery truncates the journal at every byte offset:
// recovery must never panic and never silently diverge — it recovers
// exactly the longest valid record prefix (warning about the torn
// tail), and continuing the run from there still reproduces the
// uninterrupted final state.
func TestTornJournalRecovery(t *testing.T) {
	const total = noc.Cycle(3200) // small run keeps len(journal) offsets tractable
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	jr, err := CreateJournal(refPath)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(testConfig(0, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AttachJournal(jr, true); err != nil {
		t.Fatal(err)
	}
	runScripted(t, ref, testSchedule(t), nil, total)
	if err := ref.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	tornPath := filepath.Join(dir, "torn.jsonl")
	for off := 0; off <= len(data); off++ {
		if err := os.WriteFile(tornPath, data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		p, warn, err := RecoverFile(tornPath, ReplayOptions{})
		if err != nil {
			t.Fatalf("offset %d: recovery error: %v", off, err)
		}
		tornTail := off < len(data) && (off == 0 || data[off-1] != '\n')
		if tornTail && warn == "" && p != nil {
			// A cut that leaves a complete-but-unterminated record is
			// warned about too; only cuts at record boundaries are clean.
			t.Fatalf("offset %d: torn tail recovered without a warning", off)
		}
		if p == nil {
			continue // nothing recoverable (cut inside the header): fresh start
		}
		runScripted(t, p, testSchedule(t), doneTags(t, tornPath), total)
		if p.TraceHash() != ref.TraceHash() || p.Delivered() != ref.Delivered() {
			t.Fatalf("offset %d: recovered run diverged: hash %016x vs %016x",
				off, p.TraceHash(), ref.TraceHash())
		}
		if err := p.CloseJournal(); err != nil {
			t.Fatal(err)
		}
		// The resumed journal must itself be cleanly recoverable: a
		// record that survived the cut with only its newline missing must
		// not merge with the first record appended after recovery.
		if _, _, warn, err := ReadJournal(tornPath); err != nil {
			t.Fatalf("offset %d: journal corrupt after resume: %v", off, err)
		} else if warn != "" {
			t.Fatalf("offset %d: journal still torn after resume: %s", off, warn)
		}
	}
}

// TestTornTailResumeThenRecoverAgain crashes twice: first a kill that
// strips only the final record's newline (the record itself survives),
// then — after recovery has resumed and journaled more commands — a
// second kill. The second recovery must replay every record, including
// the reattached tail record and everything appended after it, and the
// finished run must match the uninterrupted reference bit for bit.
func TestTornTailResumeThenRecoverAgain(t *testing.T) {
	ref, _ := journaledRun(t, t.TempDir(), testTotal, true)
	_, path := journaledRun(t, t.TempDir(), 2500, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatal("journal does not end with a newline")
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	p, warn, err := RecoverFile(path, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warn, "missing trailing newline") {
		t.Fatalf("want a missing-newline warning, got %q", warn)
	}
	// Resume past cycle 3000 so at least one more command (and the
	// cycle-4000 snapshot) lands after the reattached record.
	runScripted(t, p, testSchedule(t), doneTags(t, path), 5000)
	if err := p.CloseJournal(); err != nil {
		t.Fatal(err)
	}
	q, warn, err := RecoverFile(path, ReplayOptions{})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if warn != "" {
		t.Fatalf("second recovery warned: %q", warn)
	}
	runScripted(t, q, testSchedule(t), doneTags(t, path), testTotal)
	if err := q.Finish(); err != nil {
		t.Fatal(err)
	}
	if q.TraceHash() != ref.TraceHash() || q.Delivered() != ref.Delivered() {
		t.Fatalf("twice-recovered run diverged: hash %016x vs %016x, delivered %d vs %d",
			q.TraceHash(), ref.TraceHash(), q.Delivered(), ref.Delivered())
	}
	if q.Counters() != ref.Counters() {
		t.Fatalf("twice-recovered counters diverged")
	}
	if err := q.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

// TestNonFiniteInputsRejected feeds NaN and ±Inf — all reachable from
// the line protocol via strconv.ParseFloat — into every float-accepting
// admission path. Each must come back as a bad-request rejection; a NaN
// that reaches the fixed-point budget math would corrupt the budgets
// with an implementation-defined float-to-uint conversion.
func TestNonFiniteInputsRejected(t *testing.T) {
	tab, err := NewTable(TableConfig{
		Radix: 4, LMax: 8, GLBufferFlits: 16,
		GBShare: 0.8, GLShare: 0.1, Policy: PolicyDegrade,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, v := range bad {
		req := FlowReq{Src: 0, Dst: 1, Class: noc.GuaranteedBandwidth, Rate: v, PacketLen: 4}
		if _, rej := tab.Admit(req, 0, 0); rej == nil || rej.Reason != ReasonBadRequest {
			t.Fatalf("rate %v admitted (rej=%+v)", v, rej)
		}
		req = FlowReq{Src: 0, Dst: 1, Class: noc.GuaranteedBandwidth, Rate: 0.2, PacketLen: 4, Load: v}
		if _, rej := tab.Admit(req, 0, 0); rej == nil || rej.Reason != ReasonBadRequest {
			t.Fatalf("load %v admitted (rej=%+v)", v, rej)
		}
		if _, rej := tab.SetBudget(1, v, 0); rej == nil || rej.Reason != ReasonBadRequest {
			t.Fatalf("budget share %v accepted (rej=%+v)", v, rej)
		}
		if _, err := NewTable(TableConfig{Radix: 4, LMax: 8, GLBufferFlits: 16, GBShare: v, GLShare: 0.1}); err == nil {
			t.Fatalf("GBShare %v config validated", v)
		}
	}
	res, rej := tab.Admit(FlowReq{Src: 2, Dst: 1, Class: noc.GuaranteedBandwidth, Rate: 0.2, PacketLen: 4}, 0, 0)
	if rej != nil {
		t.Fatalf("finite admit rejected: %+v", rej)
	}
	for _, v := range bad {
		if _, rej := tab.Resize(res.ID, v, 0, false, 0); rej == nil || rej.Reason != ReasonBadRequest {
			t.Fatalf("resize to %v accepted (rej=%+v)", v, rej)
		}
	}
	if res.Cost == 0 || res.GrantedCost != res.Cost {
		t.Fatalf("surviving reservation disturbed: %+v", res)
	}
}

// TestCorruptMiddleRefused flips a byte well before the journal tail:
// that is corruption, not a torn write, and replay must refuse rather
// than silently drop history.
func TestCorruptMiddleRefused(t *testing.T) {
	_, path := journaledRun(t, t.TempDir(), testTotal, true)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mid := bytes.IndexByte(data[len(data)/2:], '"') + len(data)/2
	data[mid] ^= 0x01
	if _, _, _, err := DecodeJournal(data); err == nil {
		t.Fatal("corrupted middle record decoded without error")
	} else if !strings.Contains(err.Error(), "refusing to replay a hole") {
		t.Fatalf("unexpected corruption error: %v", err)
	}
}

// TestRejectedCommandsDontDisturb interleaves a barrage of doomed
// commands (over-budget adds, bogus removes) into the scenario; the
// delivery trace and counters must be identical to the clean run.
func TestRejectedCommandsDontDisturb(t *testing.T) {
	run := func(noise bool) *Plane {
		p, err := New(testConfig(0, true))
		if err != nil {
			t.Fatal(err)
		}
		sched := testSchedule(t)
		for {
			now := p.Now()
			for len(sched) > 0 && sched[0].At <= now {
				if noise {
					for _, bad := range []string{
						"add gb 0 1 rate=1.0 len=8", // duplicate src or over budget
						"remove 999",
						"resize 999 rate=0.5",
						"budget 99 share=0.5",
						"add gl 1 1 rate=0.9 len=8 latency=1 burst=99",
					} {
						cmd, err := ParseCommand(bad)
						if err != nil {
							t.Fatal(err)
						}
						if r := p.Apply(cmd); r.OK {
							t.Fatalf("noise command %q was accepted", bad)
						}
					}
				}
				p.Apply(sched[0].Cmd)
				sched = sched[1:]
			}
			if now >= testTotal {
				break
			}
			next := testTotal
			if len(sched) > 0 && sched[0].At < next {
				next = sched[0].At
			}
			if err := p.Advance(noc.SatSub(next, now)); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	clean, noisy := run(false), run(true)
	if clean.TraceHash() != noisy.TraceHash() || clean.Counters() != noisy.Counters() {
		t.Fatalf("rejected commands disturbed the run: hash %016x vs %016x",
			clean.TraceHash(), noisy.TraceHash())
	}
	if !tableStateEqual(clean.Table().State(), noisy.Table().State()) {
		t.Fatal("rejected commands disturbed the admission table")
	}
}

// TestShardsBitIdentical runs the fault-free scenario at shard counts
// 1, 2, and 4: sharding is pure mechanism and must not move a flit.
func TestShardsBitIdentical(t *testing.T) {
	run := func(shards int) *Plane {
		cfg := testConfig(shards, false)
		cfg.ShardWorkers = shards
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		runScripted(t, p, testSchedule(t), nil, testTotal)
		return p
	}
	ref := run(1)
	for _, shards := range []int{2, 4} {
		p := run(shards)
		if p.TraceHash() != ref.TraceHash() || p.Counters() != ref.Counters() {
			t.Fatalf("shards=%d diverged: hash %016x vs %016x", shards, p.TraceHash(), ref.TraceHash())
		}
	}
}

// TestLeaseExpiryFreesBudget admits a leased reservation that fills the
// budget, watches the over-budget retry hint, and re-admits after the
// deterministic expiry.
func TestLeaseExpiryFreesBudget(t *testing.T) {
	cfg := testConfig(0, false)
	cfg.GBShare = 0.5
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(line string) Command {
		cmd, err := ParseCommand(line)
		if err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	if r := p.Apply(mk("add gb 0 1 rate=0.5 len=8 lease=1000")); !r.OK {
		t.Fatalf("leased add rejected: %s", r)
	}
	r := p.Apply(mk("add gb 2 1 rate=0.5 len=8"))
	if r.OK || r.Reason != ReasonGBBudget {
		t.Fatalf("expected gb-budget rejection, got %s", r)
	}
	if r.RetryAfter != 1000 {
		t.Fatalf("retry hint %d, want 1000 (the lease expiry)", r.RetryAfter.Uint())
	}
	if err := p.Advance(r.RetryAfter); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Expired != 1 {
		t.Fatalf("expired %d leases, want 1", st.Expired)
	}
	if r := p.Apply(mk("add gb 2 1 rate=0.5 len=8")); !r.OK {
		t.Fatalf("post-expiry add rejected: %s", r)
	}
}
