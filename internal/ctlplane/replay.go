package ctlplane

import (
	"fmt"
	"os"
	"reflect"

	"swizzleqos/internal/noc"
)

// ReplayOptions parameterize journal replay. Shards/ShardWorkers
// override the execution mechanism (results are bit-identical at any
// value); OnDeliver observes every re-executed delivery, e.g. to write
// a trace file.
type ReplayOptions struct {
	Shards       int
	ShardWorkers int
	OnDeliver    func(*noc.Packet)
}

// Rebuild re-executes a journal from genesis: the header record
// rebuilds the identical simulation, every command re-applies at its
// stamped cycle, and every snapshot along the way is verified against
// the re-executed state. Any divergence — a command that no longer
// admits, a different assigned id, a snapshot that disagrees on the
// trace hash, counters, or admission table — is a hard error naming the
// mismatch; recovery is bit-for-bit or it is refused.
//
// Rebuild is a taint barrier: every journal-decoded value either passes
// SimConfig.Validate (the header) or re-enters admission through Apply
// (the commands), so the returned plane holds only validated state.
//
//ssvc:barrier
func Rebuild(recs []Record, ro ReplayOptions) (*Plane, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("ctlplane: empty journal")
	}
	hdr := recs[0]
	if hdr.Kind != KindHeader || hdr.Header == nil {
		return nil, fmt.Errorf("ctlplane: journal does not start with a header record (got %q)", hdr.Kind)
	}
	if hdr.Header.Version != JournalVersion {
		return nil, fmt.Errorf("ctlplane: journal format version %d, this build reads %d", hdr.Header.Version, JournalVersion)
	}
	cfg := hdr.Header.Sim
	cfg.Shards = ro.Shards
	cfg.ShardWorkers = ro.ShardWorkers
	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if ro.OnDeliver != nil {
		p.OnDeliver(ro.OnDeliver)
	}
	for i, rec := range recs[1:] {
		switch rec.Kind {
		case KindCmd:
			c := rec.Cmd
			if c == nil {
				return nil, fmt.Errorf("ctlplane: journal record %d: cmd record without a command", i+1)
			}
			if c.Cycle < p.Now() {
				return nil, fmt.Errorf("ctlplane: journal record %d: command cycle %d before current cycle %d (journal out of order)",
					i+1, c.Cycle.Uint(), p.Now().Uint())
			}
			if err := p.AdvanceTo(c.Cycle); err != nil {
				return nil, fmt.Errorf("ctlplane: replay to cycle %d: %w", c.Cycle.Uint(), err)
			}
			r := p.Apply(c.Cmd)
			if !r.OK {
				return nil, fmt.Errorf("ctlplane: replay divergence at cycle %d seq %d: journaled %s command re-applied as %s",
					c.Cycle.Uint(), c.Seq, c.Cmd.Op, r.String())
			}
			if c.ID != 0 && r.ID != c.ID {
				return nil, fmt.Errorf("ctlplane: replay divergence at cycle %d seq %d: journaled reservation id %d, re-admission assigned %d",
					c.Cycle.Uint(), c.Seq, c.ID, r.ID)
			}
			if p.seqNo != c.Seq {
				return nil, fmt.Errorf("ctlplane: replay divergence at cycle %d: journaled seq %d, re-execution at seq %d (missing records?)",
					c.Cycle.Uint(), c.Seq, p.seqNo)
			}
		case KindSnap, KindEnd:
			s := rec.Snap
			if s == nil {
				return nil, fmt.Errorf("ctlplane: journal record %d: snapshot record without a snapshot", i+1)
			}
			if err := p.AdvanceTo(s.Cycle); err != nil {
				return nil, fmt.Errorf("ctlplane: replay to cycle %d: %w", s.Cycle.Uint(), err)
			}
			if err := p.verifySnap(s); err != nil {
				return nil, err
			}
		case KindHeader:
			return nil, fmt.Errorf("ctlplane: journal record %d: duplicate header", i+1)
		default:
			return nil, fmt.Errorf("ctlplane: journal record %d: unknown kind %q", i+1, rec.Kind)
		}
	}
	return p, nil
}

// verifySnap cross-checks a journaled snapshot against the re-executed
// state.
func (p *Plane) verifySnap(s *SnapRecord) error {
	if p.seqNo != s.Seq {
		return fmt.Errorf("ctlplane: snapshot at cycle %d diverges: seq %d journaled, %d re-executed", s.Cycle.Uint(), s.Seq, p.seqNo)
	}
	if p.traceHash != s.TraceHash {
		return fmt.Errorf("ctlplane: snapshot at cycle %d diverges: trace hash %016x journaled, %016x re-executed",
			s.Cycle.Uint(), s.TraceHash, p.traceHash)
	}
	if p.delivered != s.Delivered {
		return fmt.Errorf("ctlplane: snapshot at cycle %d diverges: %d deliveries journaled, %d re-executed",
			s.Cycle.Uint(), s.Delivered, p.delivered)
	}
	if got := p.sw.Totals(); !reflect.DeepEqual(got, s.Counters) {
		return fmt.Errorf("ctlplane: snapshot at cycle %d diverges: counters journaled %+v, re-executed %+v",
			s.Cycle.Uint(), s.Counters, got)
	}
	if got := p.tab.State(); !tableStateEqual(got, s.Table) {
		return fmt.Errorf("ctlplane: snapshot at cycle %d diverges: admission table journaled %+v, re-executed %+v",
			s.Cycle.Uint(), s.Table, got)
	}
	return nil
}

// tableStateEqual compares admission states, treating nil and empty
// slices as equal (JSON round-trips empty slices to nil).
func tableStateEqual(a, b TableState) bool {
	if a.NextID != b.NextID || a.Policy != b.Policy {
		return false
	}
	if !uintsEqual(a.GBBudget, b.GBBudget) {
		return false
	}
	if !intsEqual(a.InDown, b.InDown) || !intsEqual(a.OutDown, b.OutDown) {
		return false
	}
	if len(a.Reservations) != len(b.Reservations) {
		return false
	}
	for i := range a.Reservations {
		if !reflect.DeepEqual(a.Reservations[i], b.Reservations[i]) {
			return false
		}
	}
	return true
}

func uintsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// terminateTail appends the record terminator when a recovered
// journal's last byte is not '\n' — the crash landed between the final
// record's bytes and its newline (DecodeJournal's "last record intact"
// case). Without it, the first post-recovery Append would write its
// frame onto the same line, merging two records into one unparseable
// line and breaking the next recovery.
func terminateTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, st.Size()-1); err != nil {
		return err
	}
	if last[0] == '\n' {
		return nil
	}
	if _, err := f.WriteAt([]byte{'\n'}, st.Size()); err != nil {
		return err
	}
	return f.Sync()
}

// RecoverFile recovers a plane from a journal file: decode (tolerating
// a torn tail), re-execute with verification, truncate any torn bytes,
// and re-attach the journal for appending. A missing or empty journal
// returns (nil, "", nil): the caller starts fresh. The returned warning
// describes a discarded torn tail, if any.
func RecoverFile(path string, ro ReplayOptions) (*Plane, string, error) {
	recs, validEnd, warn, err := ReadJournal(path)
	if err != nil {
		return nil, "", err
	}
	if len(recs) == 0 {
		return nil, warn, nil
	}
	p, err := Rebuild(recs, ro)
	if err != nil {
		return nil, warn, err
	}
	if warn != "" {
		if err := os.Truncate(path, validEnd); err != nil {
			return nil, warn, fmt.Errorf("ctlplane: truncate torn journal tail: %w", err)
		}
		if err := terminateTail(path); err != nil {
			return nil, warn, fmt.Errorf("ctlplane: terminate recovered journal tail: %w", err)
		}
	}
	jr, err := AppendJournal(path)
	if err != nil {
		return nil, warn, err
	}
	if err := p.AttachJournal(jr, false); err != nil {
		return nil, warn, err
	}
	return p, warn, nil
}
