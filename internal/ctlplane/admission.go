package ctlplane

import (
	"fmt"
	"sort"

	"swizzleqos/internal/faults"
	"swizzleqos/internal/glbound"
	"swizzleqos/internal/noc"
)

// Frame is the fixed-point denominator for bandwidth accounting: a
// reservation's cost is the number of Frame-ths of an output channel it
// consumes. All admission arithmetic is integer arithmetic on costs, so
// the over-commit invariant (sum of costs <= budget, per output) is
// exact and the fuzz oracle can recompute it from scratch.
const Frame = 1 << 20

// Policy selects what happens to existing reservations when their
// output's budget shrinks under them (a budget command, or fail-stop
// degradation shifting the schedulable set).
type Policy uint8

const (
	// PolicyDegrade keeps every reservation and scales granted rates
	// proportionally to fit the new budget (the paper's graceful
	// degradation, PR 3's SetVticks machinery). On an input fail-stop
	// the freed bandwidth is redistributed to the survivors.
	PolicyDegrade Policy = iota
	// PolicyReject keeps granted == admitted always: a budget shrink
	// revokes the newest reservations until the rest fit, and freed
	// fail-stop bandwidth returns to best effort.
	PolicyReject
)

// String names the policy as the line protocol spells it.
func (p Policy) String() string {
	if p == PolicyReject {
		return "reject"
	}
	return "degrade"
}

// Reservation is one admitted flow. Cost is the admitted (requested)
// rate in Frame units; GrantedCost is the currently granted rate, which
// tracks Cost except under PolicyDegrade after a budget shrink (scaled
// down) or an input fail-stop (survivors scaled up). GrantedCost 0
// means the reservation is fully degraded: its traffic is demoted to
// best-effort priority (SSVC Vtick 0) until budget returns.
type Reservation struct {
	ID          uint64    `json:"id"`
	Req         FlowReq   `json:"req"`
	Cost        uint64    `json:"cost"`
	GrantedCost uint64    `json:"granted"`
	ExpiresAt   noc.Cycle `json:"expiresAt,omitempty"` // 0 = no lease
}

// GrantedRate returns the granted rate in flits/cycle.
func (r *Reservation) GrantedRate() float64 { return float64(r.GrantedCost) / Frame }

// GrantedVtick returns the SSVC virtual-clock increment implied by the
// granted rate: the inter-packet time of PacketLen-flit packets at that
// rate, rounded up so the arbiter never over-serves the grant. Zero
// (fully degraded) demotes the crosspoint to best-effort priority.
func (r *Reservation) GrantedVtick() noc.VTime {
	if r.GrantedCost == 0 {
		return 0
	}
	num := Frame * uint64(r.Req.PacketLen)
	q := num / r.GrantedCost
	if num%r.GrantedCost != 0 {
		q++ // round up: never over-serve the grant
	}
	return noc.VTimeOf(q)
}

// costOf returns the Frame-unit channel share a request consumes,
// derived from its Vtick: a PacketLen-flit packet every Vtick cycles.
// Deriving the cost from the (rounded) Vtick rather than the raw rate
// makes "sum of admitted Vticks fits the frame" the literal invariant.
// It is a taint sink: every request reaching it must have crossed a
// //ssvc:barrier validation (Table.validate) first.
//
//ssvc:sink
func costOf(req FlowReq) uint64 {
	vt := req.Spec().Vtick().Uint()
	if vt == 0 {
		return 0
	}
	num := Frame * uint64(req.PacketLen)
	cost := num / vt
	if num%vt != 0 {
		cost++ // round up: admission must cover the full Vtick
	}
	return cost
}

// Reject describes a refused command.
type Reject struct {
	Reason     Reason
	RetryAfter noc.Cycle
	Msg        string
}

func reject(reason Reason, format string, args ...any) *Reject {
	return &Reject{Reason: reason, Msg: fmt.Sprintf(format, args...)}
}

// TableConfig sizes an admission table. The //ssvc:range annotations
// are the input contract the valuerange analyzer assumes when proving
// the Frame-scaled budget arithmetic overflow-safe; Validate enforces
// the same bounds at runtime.
type TableConfig struct {
	//ssvc:range Radix 2..4096
	Radix int
	// LMax is the largest packet length admissible anywhere in the
	// network, in flits — the lmax of the Eq. 1-3 analysis.
	//
	//ssvc:range LMax 1..1048576
	LMax int
	// GLBufferFlits is the per-input GL buffer depth b of Eq. 1.
	//
	//ssvc:range GLBufferFlits 1..1048576
	GLBufferFlits int
	// GBShare and GLShare are the per-output budget fractions for the
	// two reserving classes (GB per-output budgets can be moved later
	// with budget commands; the GL share is fixed at construction
	// because SSVC GL policing is configured once).
	GBShare float64
	GLShare float64
	Policy  Policy
}

// Validate reports a descriptive error for malformed configurations.
// It enforces exactly the //ssvc:range contract declared on the struct,
// which is why it carries the barrier marker: a config that passed here
// is safe input for the Frame-scaled budget arithmetic.
//
//ssvc:barrier
func (tc TableConfig) Validate() error {
	if tc.Radix < 2 || tc.Radix > 4096 {
		return fmt.Errorf("ctlplane: radix %d must be in [2,4096]", tc.Radix)
	}
	if tc.LMax < 1 || tc.LMax > 1<<20 {
		return fmt.Errorf("ctlplane: lmax %d must be in [1,%d]", tc.LMax, 1<<20)
	}
	if tc.GLBufferFlits < 1 || tc.GLBufferFlits > 1<<20 {
		return fmt.Errorf("ctlplane: GL buffer depth %d must be in [1,%d] flits", tc.GLBufferFlits, 1<<20)
	}
	// Accepting form: NaN shares fail every ordered comparison and land
	// in the rejection rather than slipping into the Frame-unit budgets.
	if !(tc.GBShare >= 0 && tc.GLShare >= 0 && tc.GBShare+tc.GLShare <= 1) {
		return fmt.Errorf("ctlplane: shares GB=%g GL=%g must be non-negative and sum to at most 1", tc.GBShare, tc.GLShare)
	}
	return nil
}

// Table is the pure admission-control state machine: no simulation, no
// I/O, fully deterministic — the model-based fuzz drives it directly.
// The Plane owns one and materializes its decisions onto the switch.
type Table struct {
	cfg      TableConfig
	gbBudget []uint64 // per output, Frame units
	glBudget uint64   // per output, Frame units (uniform)
	inDown   []bool
	outDown  []bool
	nextID   uint64

	byID map[uint64]*Reservation
	gb   [][]*Reservation // per output, admission order
	gl   [][]*Reservation
}

// NewTable builds an empty admission table.
func NewTable(tc TableConfig) (*Table, error) {
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		cfg:      tc,
		gbBudget: make([]uint64, tc.Radix),
		glBudget: noc.ClampUint64(float64(Frame)*tc.GLShare, Frame),
		inDown:   make([]bool, tc.Radix),
		outDown:  make([]bool, tc.Radix),
		nextID:   1,
		byID:     make(map[uint64]*Reservation),
		gb:       make([][]*Reservation, tc.Radix),
		gl:       make([][]*Reservation, tc.Radix),
	}
	for o := range t.gbBudget {
		t.gbBudget[o] = noc.ClampUint64(float64(Frame)*tc.GBShare, Frame)
	}
	return t, nil
}

// Policy returns the current budget-shrink policy.
func (t *Table) Policy() Policy { return t.cfg.Policy }

// GBBudget returns output o's GB budget in Frame units.
func (t *Table) GBBudget(o int) uint64 { return t.gbBudget[o] }

// GLBudget returns the per-output GL bandwidth budget in Frame units.
func (t *Table) GLBudget() uint64 { return t.glBudget }

// Get returns the active reservation with the given id, or nil.
func (t *Table) Get(id uint64) *Reservation { return t.byID[id] }

// Len returns the number of active reservations.
func (t *Table) Len() int { return len(t.byID) }

// GB returns output o's GB reservations in admission order. The slice
// is shared; callers must not mutate it.
func (t *Table) GB(o int) []*Reservation { return t.gb[o] }

// GL returns output o's GL reservations in admission order.
func (t *Table) GL(o int) []*Reservation { return t.gl[o] }

// validRate reports whether rate is a usable bandwidth fraction. The
// accepting form means NaN fails and lands in the rejection, never in
// the fixed-point budget math.
//
//ssvc:barrier
func validRate(rate float64) bool { return rate > 0 && rate <= 1 }

// validShare reports whether a GB budget share can coexist with the
// fixed GL share; NaN fails the accepting comparison.
//
//ssvc:barrier
func validShare(share, glShare float64) bool {
	return share >= 0 && share+glShare <= 1
}

// validate checks a request against the switch geometry. It is the
// //ssvc:barrier the taint analyzer requires between the line
// protocol's parsed fields and the fixed-point cost arithmetic.
//
//ssvc:barrier
func (t *Table) validate(req FlowReq) *Reject {
	if req.Src < 0 || req.Src >= t.cfg.Radix || req.Dst < 0 || req.Dst >= t.cfg.Radix {
		return reject(ReasonBadRequest, "ports %d->%d outside radix %d", req.Src, req.Dst, t.cfg.Radix)
	}
	if req.Class != noc.GuaranteedBandwidth && req.Class != noc.GuaranteedLatency {
		return reject(ReasonBadRequest, "class %v is not reservable; only GB and GL pass admission", req.Class)
	}
	if req.PacketLen < 1 || req.PacketLen > t.cfg.LMax {
		return reject(ReasonBadRequest, "packet length %d outside [1,%d]", req.PacketLen, t.cfg.LMax)
	}
	// Float range checks use the accepting form: NaN fails every ordered
	// comparison, so a NaN (reachable via the line protocol's ParseFloat)
	// is rejected here instead of reaching the fixed-point budget math.
	if !validRate(req.Rate) {
		return reject(ReasonBadRequest, "rate %g outside (0,1]", req.Rate)
	}
	if !(req.Load >= 0 && req.Load <= 1) || req.Users < 0 {
		return reject(ReasonBadRequest, "load %g must be in [0,1] and users %d non-negative", req.Load, req.Users)
	}
	if req.Class == noc.GuaranteedLatency {
		if req.Latency == 0 || req.Burst < 1 {
			return reject(ReasonBadRequest, "GL requests need latency=<cycles> and burst>=1")
		}
	} else if req.Latency != 0 || req.Burst != 0 {
		return reject(ReasonBadRequest, "latency/burst are GL-only options")
	}
	return nil
}

// retryHint returns the cycles until the earliest lease expiry at
// output o — the soonest a budget rejection could clear — or 0.
func (t *Table) retryHint(o int, now noc.Cycle) noc.Cycle {
	var best noc.Cycle
	for _, set := range [2][]*Reservation{t.gb[o], t.gl[o]} {
		for _, r := range set {
			if r.ExpiresAt != 0 && (best == 0 || r.ExpiresAt < best) {
				best = r.ExpiresAt
			}
		}
	}
	if best == 0 {
		return 0
	}
	return noc.SatSub(best, now)
}

// Admit checks a request against the budgets and, if it fits, records
// the reservation. lease 0 means no expiry.
func (t *Table) Admit(req FlowReq, lease noc.Cycle, now noc.Cycle) (*Reservation, *Reject) {
	if rej := t.validate(req); rej != nil {
		return nil, rej
	}
	if t.inDown[req.Src] || t.outDown[req.Dst] {
		return nil, reject(ReasonPortDown, "port %d->%d has fail-stopped", req.Src, req.Dst)
	}
	set := &t.gb[req.Dst]
	if req.Class == noc.GuaranteedLatency {
		set = &t.gl[req.Dst]
	}
	for _, r := range *set {
		if r.Req.Src == req.Src {
			return nil, reject(ReasonExists, "reservation %d already holds %d->%d/%v", r.ID, req.Src, req.Dst, req.Class)
		}
	}
	cost := costOf(req)
	if req.Class == noc.GuaranteedBandwidth {
		used := t.gbUsed(req.Dst)
		if noc.SatAdd(used, cost) > t.gbBudget[req.Dst] {
			rej := reject(ReasonGBBudget, "output %d GB budget %d/%d Frame-units used; request needs %d",
				req.Dst, used, t.gbBudget[req.Dst], cost)
			rej.RetryAfter = t.retryHint(req.Dst, now)
			return nil, rej
		}
	} else {
		used := t.glUsed(req.Dst)
		if noc.SatAdd(used, cost) > t.glBudget {
			rej := reject(ReasonGLBudget, "output %d GL share %d/%d Frame-units used; request needs %d",
				req.Dst, used, t.glBudget, cost)
			rej.RetryAfter = t.retryHint(req.Dst, now)
			return nil, rej
		}
		if rej := t.glCheck(req.Dst, &req); rej != nil {
			rej.RetryAfter = t.retryHint(req.Dst, now)
			return nil, rej
		}
	}
	res := &Reservation{ID: t.nextID, Req: req, Cost: cost, GrantedCost: cost}
	t.nextID++
	if lease > 0 {
		res.ExpiresAt = now + lease
	}
	*set = append(*set, res)
	t.byID[res.ID] = res
	if req.Class == noc.GuaranteedBandwidth {
		t.renormalize(req.Dst)
	}
	return res, nil
}

// Remove revokes a reservation by id (client remove and deterministic
// lease expiry share this path).
func (t *Table) Remove(id uint64, now noc.Cycle) (*Reservation, *Reject) {
	res, ok := t.byID[id]
	if !ok {
		return nil, reject(ReasonNotFound, "no reservation %d", id)
	}
	t.drop(res)
	if res.Req.Class == noc.GuaranteedBandwidth {
		t.renormalize(res.Req.Dst)
	}
	return res, nil
}

// drop unlinks a reservation from the table without renormalizing.
func (t *Table) drop(res *Reservation) {
	delete(t.byID, res.ID)
	set := &t.gb[res.Req.Dst]
	if res.Req.Class == noc.GuaranteedLatency {
		set = &t.gl[res.Req.Dst]
	}
	for i, r := range *set {
		if r.ID == res.ID {
			*set = append((*set)[:i], (*set)[i+1:]...)
			break
		}
	}
}

// Resize changes a reservation's rate (rate > 0) and/or lease
// (setLease; lease 0 clears). The new rate passes the same budget and
// GL-bound checks as an add.
func (t *Table) Resize(id uint64, rate float64, lease noc.Cycle, setLease bool, now noc.Cycle) (*Reservation, *Reject) {
	res, ok := t.byID[id]
	if !ok {
		return nil, reject(ReasonNotFound, "no reservation %d", id)
	}
	if rate != 0 {
		// Accepting form: a NaN rate must be rejected, not resized to.
		if !validRate(rate) {
			return nil, reject(ReasonBadRequest, "rate %g outside (0,1]", rate)
		}
		newReq := res.Req
		newReq.Rate = rate
		newCost := costOf(newReq)
		if res.Req.Class == noc.GuaranteedBandwidth {
			used := noc.SatAdd(noc.SatSub(t.gbUsed(res.Req.Dst), res.Cost), newCost)
			if used > t.gbBudget[res.Req.Dst] {
				rej := reject(ReasonGBBudget, "output %d GB budget %d Frame-units cannot fit resize to %d",
					res.Req.Dst, t.gbBudget[res.Req.Dst], newCost)
				rej.RetryAfter = t.retryHint(res.Req.Dst, now)
				return nil, rej
			}
		} else {
			used := noc.SatAdd(noc.SatSub(t.glUsed(res.Req.Dst), res.Cost), newCost)
			if used > t.glBudget {
				rej := reject(ReasonGLBudget, "output %d GL share %d Frame-units cannot fit resize to %d",
					res.Req.Dst, t.glBudget, newCost)
				rej.RetryAfter = t.retryHint(res.Req.Dst, now)
				return nil, rej
			}
		}
		res.Req = newReq
		res.Cost = newCost
		res.GrantedCost = newCost
	}
	if setLease {
		if lease == 0 {
			res.ExpiresAt = 0
		} else {
			res.ExpiresAt = now + lease
		}
	}
	if res.Req.Class == noc.GuaranteedBandwidth {
		t.renormalize(res.Req.Dst)
	}
	return res, nil
}

// SetBudget changes output o's GB budget share. If the new budget no
// longer covers the admitted set, PolicyDegrade scales every grant down
// proportionally and PolicyReject revokes newest-first until the rest
// fit; the revoked reservations are returned for the caller to detach.
func (t *Table) SetBudget(o int, share float64, now noc.Cycle) ([]*Reservation, *Reject) {
	if o < 0 || o >= t.cfg.Radix {
		return nil, reject(ReasonBadRequest, "output %d outside radix %d", o, t.cfg.Radix)
	}
	// Accepting form: a NaN share would otherwise pass straight into
	// the float-to-fixed conversion, corrupting the budget.
	if !validShare(share, t.cfg.GLShare) {
		return nil, reject(ReasonBadRequest, "share %g must be in [0,%g] (GL holds %g)", share, 1-t.cfg.GLShare, t.cfg.GLShare)
	}
	t.gbBudget[o] = noc.ClampUint64(float64(Frame)*share, Frame)
	revoked := t.fit(o)
	t.renormalize(o)
	return revoked, nil
}

// SetPolicy switches the shrink policy. Moving to PolicyReject while an
// output is over-committed (degraded) revokes newest-first until every
// output fits again.
func (t *Table) SetPolicy(p Policy) []*Reservation {
	t.cfg.Policy = p
	var revoked []*Reservation
	for o := 0; o < t.cfg.Radix; o++ {
		revoked = append(revoked, t.fit(o)...)
		t.renormalize(o)
	}
	return revoked
}

// fit enforces the PolicyReject invariant at output o: revoke
// newest-first (highest id) until the admitted costs fit the budget.
// Under PolicyDegrade it never revokes.
func (t *Table) fit(o int) []*Reservation {
	if t.cfg.Policy != PolicyReject {
		return nil
	}
	var revoked []*Reservation
	for t.gbUsed(o) > t.gbBudget[o] {
		newest := t.gb[o][0]
		for _, r := range t.gb[o] {
			if r.ID > newest.ID {
				newest = r
			}
		}
		t.drop(newest)
		revoked = append(revoked, newest)
	}
	return revoked
}

// FailStop marks a port dead and revokes every reservation it carried.
// Under PolicyDegrade an input failure's freed bandwidth is
// redistributed to the surviving reservations at each affected output
// (the PR 3 graceful-degradation semantics); a later admission at that
// output claws the bonus back (renormalize).
func (t *Table) FailStop(f faults.FailStop) []*Reservation {
	var revoked []*Reservation
	if f.Input {
		t.inDown[f.Port] = true
		for o := 0; o < t.cfg.Radix; o++ {
			prevGranted := t.gbGranted(o)
			changed := false
			for _, set := range [2][]*Reservation{t.gb[o], t.gl[o]} {
				for _, r := range set {
					if r.Req.Src == f.Port {
						revoked = append(revoked, r)
						changed = true
					}
				}
			}
			if !changed {
				continue
			}
			for _, r := range revoked {
				if t.byID[r.ID] != nil && r.Req.Dst == o {
					t.drop(r)
				}
			}
			if t.cfg.Policy == PolicyDegrade {
				t.fill(o, prevGranted)
			}
		}
		return revoked
	}
	o := f.Port
	t.outDown[o] = true
	revoked = append(revoked, t.gb[o]...)
	revoked = append(revoked, t.gl[o]...)
	for _, r := range revoked {
		t.drop(r)
	}
	return revoked
}

// gbUsed sums the admitted GB costs at output o.
func (t *Table) gbUsed(o int) uint64 {
	var used uint64
	for _, r := range t.gb[o] {
		used += r.Cost
	}
	return used
}

// gbGranted sums the granted GB costs at output o.
func (t *Table) gbGranted(o int) uint64 {
	var used uint64
	for _, r := range t.gb[o] {
		used += r.GrantedCost
	}
	return used
}

// glUsed sums the admitted GL costs at output o.
func (t *Table) glUsed(o int) uint64 {
	var used uint64
	for _, r := range t.gl[o] {
		used += r.Cost
	}
	return used
}

// renormalize recomputes granted costs at output o from the admitted
// costs: granted == admitted when the set fits its budget, and under
// PolicyDegrade a proportional scale-down when it does not (only a
// budget shrink can create that state). Proportional floors guarantee
// the granted sum never exceeds the budget.
func (t *Table) renormalize(o int) {
	used := t.gbUsed(o)
	budget := t.gbBudget[o]
	if used <= budget {
		for _, r := range t.gb[o] {
			r.GrantedCost = r.Cost
		}
		return
	}
	// Over-committed: only reachable under PolicyDegrade (fit revokes
	// first under PolicyReject).
	for _, r := range t.gb[o] {
		r.GrantedCost = r.Cost * budget / used
	}
}

// fill scales output o's surviving GB grants up to the smaller of the
// budget and the pre-failure granted total, proportionally to their
// admitted costs — survivors absorb a failed input's reservation.
func (t *Table) fill(o int, target uint64) {
	if b := t.gbBudget[o]; target > b {
		target = b
	}
	used := t.gbUsed(o)
	if used == 0 || target <= used {
		t.renormalize(o)
		return
	}
	for _, r := range t.gb[o] {
		r.GrantedCost = r.Cost * target / used
	}
}

// Vticks fills vt (length >= radix) with output o's per-input SSVC
// Vticks from the granted GB rates and returns it.
func (t *Table) Vticks(o int, vt []noc.VTime) []noc.VTime {
	vt = vt[:t.cfg.Radix]
	for i := range vt {
		vt[i] = 0
	}
	for _, r := range t.gb[o] {
		vt[r.Req.Src] = r.GrantedVtick()
	}
	return vt
}

// glCheck verifies the Eq. 1-3 guaranteed-latency analysis for output
// o's GL set plus an optional additional request: the Eq. 1 worst-case
// wait must fit every member's constraint, and every member's requested
// burst must fit its Eq. 2-3 budget. Like costOf it is a taint sink:
// extra must already have passed Table.validate.
//
//ssvc:sink
func (t *Table) glCheck(o int, extra *FlowReq) *Reject {
	type member struct {
		latency noc.Cycle
		burst   int
		lmin    int
	}
	members := make([]member, 0, len(t.gl[o])+1)
	for _, r := range t.gl[o] {
		members = append(members, member{r.Req.Latency, r.Req.Burst, r.Req.PacketLen})
	}
	if extra != nil {
		members = append(members, member{extra.Latency, extra.Burst, extra.PacketLen})
	}
	if len(members) == 0 {
		return nil
	}
	lmin := members[0].lmin
	for _, m := range members[1:] {
		if m.lmin < lmin {
			lmin = m.lmin
		}
	}
	p := glbound.Params{LMax: t.cfg.LMax, LMin: lmin, NGL: len(members), BufferFlits: t.cfg.GLBufferFlits}
	if err := p.Validate(); err != nil {
		return reject(ReasonBadRequest, "%v", err)
	}
	wait := p.MaxWait()
	lats := make([]float64, len(members))
	for i, m := range members {
		lats[i] = float64(m.latency.Uint())
		if wait > lats[i] {
			return reject(ReasonGLBound, "Eq.1 worst-case wait %.0f cycles exceeds constraint %d (N_GL=%d, b=%d)",
				wait, m.latency.Uint(), p.NGL, p.BufferFlits)
		}
	}
	budgets, err := glbound.BurstSizes(t.cfg.LMax, lats)
	if err != nil {
		return reject(ReasonGLBound, "%v", err)
	}
	// Budgets come back sorted by latency; equal latencies get equal
	// budgets, so ranking the members by latency matches them up.
	sort.Slice(members, func(i, j int) bool { return members[i].latency < members[j].latency })
	for i, m := range members {
		if float64(m.burst) > budgets[i].MaxPackets {
			return reject(ReasonGLBound, "burst %d packets exceeds the Eq.2-3 budget %.2f at latency %d",
				m.burst, budgets[i].MaxPackets, m.latency.Uint())
		}
	}
	return nil
}

// TableState is the serializable admission state, embedded in journal
// snapshots and compared during replay verification.
type TableState struct {
	NextID       uint64        `json:"nextID"`
	Policy       Policy        `json:"policy"`
	GBBudget     []uint64      `json:"gbBudget"`
	InDown       []int         `json:"inDown,omitempty"`
	OutDown      []int         `json:"outDown,omitempty"`
	Reservations []Reservation `json:"reservations"`
}

// State captures the table, reservations sorted by id.
func (t *Table) State() TableState {
	st := TableState{
		NextID:   t.nextID,
		Policy:   t.cfg.Policy,
		GBBudget: append([]uint64(nil), t.gbBudget...),
	}
	for p, down := range t.inDown {
		if down {
			st.InDown = append(st.InDown, p)
		}
	}
	for p, down := range t.outDown {
		if down {
			st.OutDown = append(st.OutDown, p)
		}
	}
	st.Reservations = make([]Reservation, 0, len(t.byID))
	for o := 0; o < t.cfg.Radix; o++ {
		for _, set := range [2][]*Reservation{t.gb[o], t.gl[o]} {
			for _, r := range set {
				st.Reservations = append(st.Reservations, *r)
			}
		}
	}
	sort.Slice(st.Reservations, func(i, j int) bool { return st.Reservations[i].ID < st.Reservations[j].ID })
	return st
}
