package ctlplane

import (
	"fmt"
	"testing"

	"swizzleqos/internal/faults"
	"swizzleqos/internal/noc"
	"swizzleqos/internal/traffic"
)

// fuzzRadix keeps the op space small enough that random sequences
// collide on ports constantly — the interesting regime.
const fuzzRadix = 4

// checkAdmissionInvariants is the from-scratch oracle: it recomputes
// every budget sum and the Eq. 1-3 GL analysis directly from the
// table's reservation sets and fails on any over-commit, however the
// table got into its current state.
func checkAdmissionInvariants(tab *Table) error {
	seen := 0
	for o := 0; o < fuzzRadix; o++ {
		var admitted, granted, gl uint64
		for _, r := range tab.GB(o) {
			if want := costOf(r.Req); r.Cost != want {
				return fmt.Errorf("output %d: reservation %d cost %d, recomputed %d", o, r.ID, r.Cost, want)
			}
			if tab.Policy() == PolicyReject && r.GrantedCost != r.Cost {
				// Granted may exceed admitted only transiently under
				// PolicyDegrade (fail-stop fill: survivors absorb the
				// freed bandwidth until the next renormalize).
				return fmt.Errorf("output %d: reservation %d granted %d != admitted %d under PolicyReject", o, r.ID, r.GrantedCost, r.Cost)
			}
			admitted += r.Cost
			granted += r.GrantedCost
		}
		for _, r := range tab.GL(o) {
			gl += r.Cost
			if r.GrantedCost != r.Cost {
				return fmt.Errorf("output %d: GL reservation %d degraded (granted %d != %d); GL never degrades", o, r.ID, r.GrantedCost, r.Cost)
			}
		}
		// The hard over-commit invariant: granted bandwidth always fits
		// the budget. Admitted cost may exceed a shrunken budget only
		// under PolicyDegrade (grants are scaled down); under
		// PolicyReject admitted == granted must fit.
		if granted > tab.GBBudget(o) {
			return fmt.Errorf("output %d: granted %d Frame-units over budget %d", o, granted, tab.GBBudget(o))
		}
		if tab.Policy() == PolicyReject && admitted > tab.GBBudget(o) {
			return fmt.Errorf("output %d: admitted %d over budget %d under PolicyReject", o, admitted, tab.GBBudget(o))
		}
		if gl > tab.GLBudget() {
			return fmt.Errorf("output %d: GL %d Frame-units over share %d", o, gl, tab.GLBudget())
		}
		if rej := tab.glCheck(o, nil); rej != nil {
			return fmt.Errorf("output %d: admitted GL set fails its own Eq.1-3 analysis: %s", o, rej.Msg)
		}
		for _, set := range [2][]*Reservation{tab.GB(o), tab.GL(o)} {
			for _, r := range set {
				seen++
				if tab.Get(r.ID) != r {
					return fmt.Errorf("output %d: reservation %d not indexed by id", o, r.ID)
				}
			}
		}
	}
	if seen != tab.Len() {
		return fmt.Errorf("index holds %d reservations, sets hold %d", tab.Len(), seen)
	}
	return nil
}

// driveAdmission interprets a byte stream as a command sequence against
// a fresh table — adds, removes, resizes, budget moves, policy flips,
// fail-stops, and time advances with lease expiry — checking the
// oracle after every single step.
func driveAdmission(t interface{ Fatalf(string, ...any) }, data []byte) {
	tab, err := NewTable(TableConfig{
		Radix: fuzzRadix, LMax: 8, GLBufferFlits: 16,
		GBShare: 0.8, GLShare: 0.1, Policy: PolicyDegrade,
	})
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	now := noc.Cycle(0)
	failStops := 0
	pick := func(b byte) *Reservation {
		// Deterministically pick the b-th live id in sorted order.
		st := tab.State()
		if len(st.Reservations) == 0 {
			return nil
		}
		return tab.Get(st.Reservations[int(b)%len(st.Reservations)].ID)
	}
	for i := 0; i+4 <= len(data); i += 4 {
		op, a, b, c := data[i]%8, data[i+1], data[i+2], data[i+3]
		switch op {
		case 0, 1: // add gb / gl
			req := FlowReq{
				Src:       int(a) % fuzzRadix,
				Dst:       int(b) % fuzzRadix,
				Class:     noc.GuaranteedBandwidth,
				Rate:      float64(c%32+1) / 32,
				PacketLen: int(c%8) + 1,
			}
			if op == 1 {
				req.Class = noc.GuaranteedLatency
				req.Rate = float64(c%8+1) / 256
				req.Latency = noc.Cycle(a%4+1) * 200
				req.Burst = int(b%3) + 1
			}
			var lease noc.Cycle
			if c%4 == 0 {
				lease = noc.Cycle(c%16+1) * 64
			}
			tab.Admit(req, lease, now)
		case 2: // remove
			if r := pick(a); r != nil {
				tab.Remove(r.ID, now)
			}
		case 3: // resize
			if r := pick(a); r != nil {
				tab.Resize(r.ID, float64(b%32+1)/32, noc.Cycle(c)*16, c%2 == 0, now)
			}
		case 4: // budget move
			tab.SetBudget(int(a)%fuzzRadix, float64(b%29)/32, now)
		case 5: // policy flip
			if a%2 == 0 {
				tab.SetPolicy(PolicyDegrade)
			} else {
				tab.SetPolicy(PolicyReject)
			}
		case 6: // fail-stop (bounded so some ports stay up)
			if failStops < 2 {
				failStops++
				tab.FailStop(faults.FailStop{Input: a%2 == 0, Port: int(b) % fuzzRadix, At: now})
			}
		case 7: // advance time; expire leases deterministically
			now += noc.Cycle(c%64) + 1
			st := tab.State()
			for _, r := range st.Reservations {
				if r.ExpiresAt != 0 && r.ExpiresAt <= now {
					tab.Remove(r.ID, now)
				}
			}
		}
		if err := checkAdmissionInvariants(tab); err != nil {
			t.Fatalf("op %d (byte %d) broke the table: %v", op, i, err)
		}
	}
}

// TestAdmissionModelFuzz runs many seeded random op sequences through
// the oracle on every `go test` (the native fuzz target below reuses
// the same interpreter for open-ended fuzzing).
func TestAdmissionModelFuzz(t *testing.T) {
	sequences := 300
	if testing.Short() {
		sequences = 30
	}
	for seed := 0; seed < sequences; seed++ {
		rng := traffic.NewRNG(uint64(seed)*2654435761 + 1)
		data := make([]byte, 4*200)
		for i := range data {
			data[i] = byte(rng.Uint64())
		}
		driveAdmission(t, data)
	}
}

// FuzzAdmission is the native fuzz entry point:
//
//	go test -fuzz=FuzzAdmission ./internal/ctlplane/
func FuzzAdmission(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 1, 0, 1, 255, 4, 2, 8, 0, 7, 0, 0, 63, 5, 1, 0, 0})
	f.Add([]byte{6, 0, 1, 0, 0, 1, 1, 16, 3, 0, 31, 2, 7, 0, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		driveAdmission(t, data)
	})
}
