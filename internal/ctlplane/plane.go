// Package ctlplane is the crash-safe reservation control plane over the
// crossbar simulator: a long-running simulation that admits, leases,
// resizes, and revokes GB/GL reservations live, applying every accepted
// mutation through core.SSVC.SetVticks re-derivation while journaling it
// for bit-for-bit crash recovery (see journal.go and DESIGN.md "Control
// plane"). The package is wall-clock free by construction — leases
// expire at simulated cycles, never timers — and is enforced so by the
// determinism analyzer (internal/analysis).
package ctlplane

import (
	"fmt"
	"math"

	"swizzleqos/internal/arb"
	"swizzleqos/internal/core"
	"swizzleqos/internal/fabric"
	"swizzleqos/internal/faults"
	"swizzleqos/internal/noc"
	"swizzleqos/internal/runner"
	"swizzleqos/internal/switchsim"
	"swizzleqos/internal/traffic"
)

// SimConfig fully determines a control-plane simulation: it is the
// journal header, so two planes built from equal configs (and fed equal
// command sequences) produce identical delivery traces. Shards and
// ShardWorkers are pure execution mechanism — results are bit-identical
// at any value — and are deliberately excluded from the journal.
type SimConfig struct {
	//ssvc:range Radix 2..4096
	Radix int `json:"radix"`
	//ssvc:range BEBufferFlits 1..1048576
	BEBufferFlits int `json:"beBuf"`
	//ssvc:range GLBufferFlits 1..1048576
	GLBufferFlits int `json:"glBuf"`
	//ssvc:range GBBufferFlits 1..1048576
	GBBufferFlits int `json:"gbBuf"`

	//ssvc:range CounterBits 2..32
	CounterBits int `json:"counterBits"`
	//ssvc:range SigBits 1..31
	SigBits       int                `json:"sigBits"`
	CounterPolicy core.CounterPolicy `json:"counterPolicy"`

	// LMax bounds packet lengths network-wide (the Eq. 1-3 lmax).
	//
	//ssvc:range LMax 1..1048576
	LMax int `json:"lmax"`
	// GBShare and GLShare are the initial per-output budget fractions.
	GBShare float64 `json:"gbShare"`
	GLShare float64 `json:"glShare"`
	//ssvc:range GLBurst 1..1048576
	GLBurst int `json:"glBurst"`

	// Degrade selects PolicyDegrade (true) or PolicyReject (false) as
	// the initial budget-shrink policy; the policy command flips it.
	Degrade bool `json:"degrade"`

	// Seed derives every workload RNG stream (per-reservation, via
	// runner.DeriveSeed).
	Seed uint64 `json:"seed"`

	// SnapEvery is the snapshot cadence in cycles (0 disables).
	// Snapshots are fsync'd verification checkpoints: they bound the
	// simulation progress lost to a crash and let replay cross-check
	// its re-execution, but recovery correctness never depends on them.
	SnapEvery noc.Cycle `json:"snapEvery,omitempty"`

	// Faults optionally installs a fault-injection schedule; fail-stop
	// faults interact with admission through the degrade-vs-reject
	// policy. Part of the journal header: replay re-injects them.
	Faults *faults.Config `json:"faults,omitempty"`

	Shards       int `json:"-"`
	ShardWorkers int `json:"-"`
}

// WithDefaults fills unset fields with the repository's standard
// figure-4-shaped geometry.
func (c SimConfig) WithDefaults() SimConfig {
	if c.Radix == 0 {
		c.Radix = 8
	}
	if c.BEBufferFlits == 0 {
		c.BEBufferFlits = 16
	}
	if c.GLBufferFlits == 0 {
		c.GLBufferFlits = 16
	}
	if c.GBBufferFlits == 0 {
		c.GBBufferFlits = 16
	}
	if c.CounterBits == 0 {
		c.CounterBits = 12
	}
	if c.SigBits == 0 {
		c.SigBits = 4
	}
	if c.LMax == 0 {
		c.LMax = 8
	}
	if c.GBShare == 0 {
		c.GBShare = 0.85
	}
	if c.GLShare == 0 {
		c.GLShare = 0.05
	}
	if c.GLBurst == 0 {
		c.GLBurst = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// glVtick is the SSVC cycle budget per GL packet implied by the GL
// share: the leaky bucket refills one lmax-flit packet's worth every
// LMax/GLShare cycles. A denormal GLShare can push the quotient past
// 2^64, so the float-to-fixed crossing is clamped, not cast.
func (c SimConfig) glVtick() noc.VTime {
	if c.GLShare <= 0 {
		return 0
	}
	return noc.VTimeOf(noc.ClampUint64(float64(c.LMax)/c.GLShare+0.5, math.MaxUint64))
}

// Validate reports a descriptive error for malformed configurations;
// WithDefaults output always passes. Like TableConfig.Validate it is
// the runtime enforcement of the struct's //ssvc:range contract and so
// doubles as the taint barrier for journal-decoded headers.
//
//ssvc:barrier
func (c SimConfig) Validate() error {
	if err := c.tableConfig().Validate(); err != nil {
		return err
	}
	for _, f := range [...]struct {
		name string
		v    int
	}{
		{"BE buffer", c.BEBufferFlits},
		{"GL buffer", c.GLBufferFlits},
		{"GB buffer", c.GBBufferFlits},
		{"GL burst", c.GLBurst},
	} {
		if f.v < 1 || f.v > 1<<20 {
			return fmt.Errorf("ctlplane: %s %d must be in [1,%d]", f.name, f.v, 1<<20)
		}
	}
	if c.CounterBits < 2 || c.CounterBits > 32 {
		return fmt.Errorf("ctlplane: counter bits %d must be in [2,32]", c.CounterBits)
	}
	if c.SigBits < 1 || c.SigBits >= c.CounterBits {
		return fmt.Errorf("ctlplane: sig bits %d must be in [1,%d]", c.SigBits, c.CounterBits-1)
	}
	return nil
}

// tableConfig derives the admission-table geometry.
func (c SimConfig) tableConfig() TableConfig {
	p := PolicyReject
	if c.Degrade {
		p = PolicyDegrade
	}
	return TableConfig{
		Radix:         c.Radix,
		LMax:          c.LMax,
		GLBufferFlits: c.GLBufferFlits,
		GBShare:       c.GBShare,
		GLShare:       c.GLShare,
		Policy:        p,
	}
}

// PlaneStats counts control-plane outcomes over the run.
type PlaneStats struct {
	Admitted       uint64 // accepted add commands
	RejectedBudget uint64 // gb-budget / gl-budget rejections
	RejectedBound  uint64 // gl-bound rejections
	RejectedOther  uint64 // every other rejection
	Expired        uint64 // reservations reclaimed by lease expiry
	Revoked        uint64 // reservations revoked by policy or fail-stop
}

// flowKey identifies a reservation's flow for delivery dispatch.
type flowKey struct {
	src, dst int
	class    noc.Class
}

// valve wraps a reservation's generator so revocation and lease expiry
// can silence it in place: the fabric's source set has no removal
// operation, so a dead flow stays attached with its generator shut off
// (any packets already queued drain at whatever priority the zeroed
// Vtick leaves them — best effort).
type valve struct {
	gen traffic.Generator
	off bool
}

func (v *valve) Tick(now noc.Cycle, queued int) *noc.Packet {
	if v.off {
		return nil
	}
	return v.gen.Tick(now, queued)
}

// leaseEntry schedules a deterministic expiry.
type leaseEntry struct {
	at noc.Cycle
	id uint64
}

// leaseHeap is a hand-rolled min-heap ordered by (at, id); peeking and
// popping never allocate, keeping the idle cycle loop allocation-free.
type leaseHeap []leaseEntry

func leaseLess(a, b leaseEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.id < b.id
}

func (h *leaseHeap) push(e leaseEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !leaseLess((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *leaseHeap) pop() leaseEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && leaseLess(old[l], old[small]) {
			small = l
		}
		if r < n && leaseLess(old[r], old[small]) {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// Plane runs a crossbar simulation under reservation control. Build one
// with New, optionally AttachJournal, mutate with Apply, and drive
// simulated time with Advance. Not safe for concurrent use: the daemon
// funnels network commands into the single goroutine driving the plane.
type Plane struct {
	cfg SimConfig
	sw  *switchsim.Switch
	tab *Table
	seq traffic.Sequence

	jr     *Journal
	seqNo  uint64    // journaled command sequence
	snapAt noc.Cycle // next snapshot cycle (grid multiple of SnapEvery)

	leases   leaseHeap
	valves   map[uint64]*valve
	feedback map[flowKey]*traffic.ClosedLoop
	vtArena  []noc.VTime

	traceHash uint64
	delivered uint64
	onDeliver func(*noc.Packet)

	stats PlaneStats
	err   error
}

// New builds a plane with no journal attached (volatile: replay tests
// and the experiments layer drive it directly).
func New(cfg SimConfig) (*Plane, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tab, err := NewTable(cfg.tableConfig())
	if err != nil {
		return nil, err
	}
	arbCfg := core.Config{
		Radix:       cfg.Radix,
		CounterBits: cfg.CounterBits,
		SigBits:     cfg.SigBits,
		Policy:      cfg.CounterPolicy,
		Vticks:      make([]core.VTime, cfg.Radix),
		EnableGL:    cfg.GLShare > 0,
		GLVtick:     cfg.glVtick(),
		GLBurst:     cfg.GLBurst,
	}
	if err := arbCfg.Validate(); err != nil {
		return nil, fmt.Errorf("ctlplane: %w", err)
	}
	sw, err := switchsim.New(switchsim.Config{
		Radix:         cfg.Radix,
		BEBufferFlits: cfg.BEBufferFlits,
		GLBufferFlits: cfg.GLBufferFlits,
		GBBufferFlits: cfg.GBBufferFlits,
		DynamicFlows:  true,
		Shards:        cfg.Shards,
		ShardWorkers:  cfg.ShardWorkers,
	}, func(output int) arb.Arbiter {
		c := arbCfg
		c.Vticks = make([]core.VTime, cfg.Radix)
		return core.NewSSVC(c)
	})
	if err != nil {
		return nil, fmt.Errorf("ctlplane: %w", err)
	}
	p := &Plane{
		cfg:       cfg,
		sw:        sw,
		tab:       tab,
		snapAt:    cfg.SnapEvery, // first checkpoint one cadence in
		valves:    make(map[uint64]*valve),
		feedback:  make(map[flowKey]*traffic.ClosedLoop),
		vtArena:   make([]noc.VTime, cfg.Radix),
		traceHash: traceSeed,
	}
	if cfg.Faults != nil {
		if err := sw.SetFaults(*cfg.Faults); err != nil {
			return nil, fmt.Errorf("ctlplane: %w", err)
		}
		sw.OnFailStop(p.failStop)
	}
	sw.OnDeliver(p.deliverHook)
	sw.OnRelease(p.seq.Recycle)
	return p, nil
}

// AttachJournal makes the plane durable. writeHeader is true for a
// fresh journal (a header record is written and fsync'd immediately)
// and false when resuming onto a recovered journal.
func (p *Plane) AttachJournal(jr *Journal, writeHeader bool) error {
	p.jr = jr
	if !writeHeader {
		return nil
	}
	rec := &Record{Kind: KindHeader, Header: &Header{Version: JournalVersion, Sim: p.cfg}}
	if err := jr.Append(rec); err != nil {
		return err
	}
	return jr.Sync()
}

// Config returns the plane's resolved configuration.
func (p *Plane) Config() SimConfig { return p.cfg }

// Now returns the current simulated cycle.
func (p *Plane) Now() noc.Cycle { return p.sw.Now() }

// Err returns the terminal error that froze the plane (a sick engine or
// a failed journal write), or nil.
func (p *Plane) Err() error {
	if p.err != nil {
		return p.err
	}
	return p.sw.Err()
}

// Counters returns the switch's common counter block.
func (p *Plane) Counters() fabric.Counters { return p.sw.Totals() }

// FaultTotals returns the fault injector's counters.
func (p *Plane) FaultTotals() faults.Counters { return p.sw.FaultTotals() }

// Stats returns the control-plane outcome counters.
func (p *Plane) Stats() PlaneStats { return p.stats }

// TraceHash returns the running digest over all delivered packets; two
// runs with equal configs and command sequences must agree on it.
func (p *Plane) TraceHash() uint64 { return p.traceHash }

// Delivered returns the number of delivered packets.
func (p *Plane) Delivered() uint64 { return p.delivered }

// Table exposes the admission table for inspection (read-only).
func (p *Plane) Table() *Table { return p.tab }

// OnDeliver chains an external delivery observer (statistics, trace
// writers) after the plane's own accounting.
func (p *Plane) OnDeliver(fn func(*noc.Packet)) { p.onDeliver = fn }

// FNV-1a constants for the delivery-trace digest.
const (
	traceSeed  = 14695981039346656037
	tracePrime = 1099511628211
)

func mix(h, v uint64) uint64 { return (h ^ v) * tracePrime }

// deliverHook digests every delivery, feeds closed-loop sources their
// completions, and chains the external observer. It runs inside the
// engine's cycle loop, so it must not allocate.
func (p *Plane) deliverHook(pkt *noc.Packet) {
	p.delivered++
	h := p.traceHash
	h = mix(h, pkt.ID)
	h = mix(h, uint64(pkt.Src)<<32|uint64(pkt.Dst)<<8|uint64(pkt.Class))
	h = mix(h, uint64(pkt.Length))
	h = mix(h, pkt.CreatedAt.Uint())
	h = mix(h, pkt.EnqueuedAt.Uint())
	h = mix(h, pkt.GrantedAt.Uint())
	h = mix(h, pkt.DeliveredAt.Uint())
	h = mix(h, uint64(pkt.Retries))
	p.traceHash = h
	if g, ok := p.feedback[flowKey{pkt.Src, pkt.Dst, pkt.Class}]; ok {
		g.Completed(pkt.DeliveredAt)
	}
	if p.onDeliver != nil {
		p.onDeliver(pkt)
	}
}

// fail freezes the plane on its first terminal error.
func (p *Plane) fail(err error) {
	if p.err == nil && err != nil {
		p.err = err
	}
}

// Apply executes one command at the current cycle: admission check,
// durable journal append (fsync before the OK), then live
// materialization onto the switch. Rejections return typed reasons and
// a retry-after hint without touching the running simulation.
//
//ssvc:serial-only
func (p *Plane) Apply(cmd Command) Result {
	now := p.sw.Now()
	if err := p.Err(); err != nil {
		return p.rejected(Result{Cycle: now, Reason: ReasonFrozen, Msg: err.Error()})
	}
	if err := cmd.Validate(); err != nil {
		return p.rejected(Result{Cycle: now, Reason: ReasonBadRequest, Msg: err.Error()})
	}
	switch cmd.Op {
	case OpAdd:
		res, rej := p.tab.Admit(*cmd.Flow, cmd.Lease, now)
		if rej != nil {
			return p.rejected(Result{Cycle: now, Reason: rej.Reason, RetryAfter: rej.RetryAfter, Msg: rej.Msg})
		}
		if r, bad := p.journalCmd(cmd, res.ID, now); bad {
			return r
		}
		p.materializeAdd(res)
		p.stats.Admitted++
		return Result{OK: true, ID: res.ID, Cycle: now}
	case OpRemove:
		res, rej := p.tab.Remove(cmd.ID, now)
		if rej != nil {
			return p.rejected(Result{Cycle: now, Reason: rej.Reason, Msg: rej.Msg})
		}
		if r, bad := p.journalCmd(cmd, res.ID, now); bad {
			return r
		}
		p.detach(res)
		p.refit(res.Req.Dst)
		return Result{OK: true, ID: res.ID, Cycle: now}
	case OpResize:
		res, rej := p.tab.Resize(cmd.ID, cmd.Rate, cmd.Lease, cmd.SetLease, now)
		if rej != nil {
			return p.rejected(Result{Cycle: now, Reason: rej.Reason, RetryAfter: rej.RetryAfter, Msg: rej.Msg})
		}
		if r, bad := p.journalCmd(cmd, res.ID, now); bad {
			return r
		}
		if res.ExpiresAt != 0 {
			p.leases.push(leaseEntry{at: res.ExpiresAt, id: res.ID})
		}
		p.refit(res.Req.Dst)
		return Result{OK: true, ID: res.ID, Cycle: now}
	case OpBudget:
		revoked, rej := p.tab.SetBudget(cmd.Output, cmd.Share, now)
		if rej != nil {
			return p.rejected(Result{Cycle: now, Reason: rej.Reason, Msg: rej.Msg})
		}
		if r, bad := p.journalCmd(cmd, 0, now); bad {
			return r
		}
		for _, res := range revoked {
			p.detach(res)
			p.stats.Revoked++
		}
		p.refit(cmd.Output)
		return Result{OK: true, Cycle: now}
	case OpPolicy:
		pol := PolicyReject
		if cmd.Degrade {
			pol = PolicyDegrade
		}
		revoked := p.tab.SetPolicy(pol)
		if r, bad := p.journalCmd(cmd, 0, now); bad {
			return r
		}
		for _, res := range revoked {
			p.detach(res)
			p.stats.Revoked++
		}
		p.refitAll()
		return Result{OK: true, Cycle: now}
	}
	return p.rejected(Result{Cycle: now, Reason: ReasonBadRequest, Msg: fmt.Sprintf("unknown op %v", cmd.Op)})
}

// rejected counts a rejection by reason class.
func (p *Plane) rejected(r Result) Result {
	switch r.Reason {
	case ReasonGBBudget, ReasonGLBudget:
		p.stats.RejectedBudget++
	case ReasonGLBound:
		p.stats.RejectedBound++
	default:
		p.stats.RejectedOther++
	}
	return r
}

// journalCmd makes an accepted command durable before it is
// acknowledged or materialized. A journal failure freezes the plane:
// the in-memory admission already happened, but the client never gets
// an OK, and a restart recovers the exact pre-command state.
func (p *Plane) journalCmd(cmd Command, id uint64, now noc.Cycle) (Result, bool) {
	if p.jr == nil {
		p.seqNo++
		return Result{}, false
	}
	p.seqNo++
	rec := &Record{Kind: KindCmd, Cmd: &CmdRecord{Seq: p.seqNo, Cycle: now, ID: id, Cmd: cmd}}
	if err := p.jr.Append(rec); err == nil {
		err = p.jr.Sync()
		if err == nil {
			return Result{}, false
		}
		p.fail(err)
	} else {
		p.fail(err)
	}
	return p.rejected(Result{Cycle: now, Reason: ReasonJournal, Msg: p.err.Error()}), true
}

// materializeAdd attaches the admitted reservation's traffic source to
// the switch and re-derives the output's Vticks.
func (p *Plane) materializeAdd(res *Reservation) {
	req := res.Req
	spec := req.Spec()
	seed := runner.DeriveSeed(p.cfg.Seed, int(res.ID&0x7fffffff))
	var gen traffic.Generator
	if req.Users > 0 {
		clCfg := traffic.ClosedLoopConfig{Users: req.Users}
		if req.Class == noc.GuaranteedLatency {
			// GL traffic may never burst past its admitted sigma.
			clCfg.SizeMin, clCfg.SizeMax = 1, req.Burst
		}
		cl := traffic.NewClosedLoop(&p.seq, spec, clCfg, seed)
		p.feedback[flowKey{req.Src, req.Dst, req.Class}] = cl
		gen = cl
	} else if req.Class == noc.GuaranteedBandwidth {
		load := req.Load
		if load == 0 {
			load = req.Rate
		}
		gen = traffic.NewBernoulli(&p.seq, spec, load, seed)
	} else {
		// Rate passed admission, so the quotient is finite, but the
		// clamped crossing keeps the conversion well-defined regardless.
		interval := noc.ClampUint64(float64(req.PacketLen)/req.Rate+0.5, math.MaxUint64)
		if interval == 0 {
			interval = 1
		}
		gen = traffic.NewPeriodic(&p.seq, spec, noc.CycleOf(interval), 0)
	}
	v := &valve{gen: gen}
	p.valves[res.ID] = v
	if err := p.sw.AddFlow(traffic.Flow{Spec: spec, Gen: v}); err != nil {
		p.fail(fmt.Errorf("ctlplane: materialize reservation %d: %w", res.ID, err))
		return
	}
	if res.ExpiresAt != 0 {
		p.leases.push(leaseEntry{at: res.ExpiresAt, id: res.ID})
	}
	if req.Class == noc.GuaranteedBandwidth {
		p.refit(req.Dst)
	}
}

// detach silences a revoked/expired reservation's source. Admission
// forbids duplicate (src,dst,class) reservations, so a present feedback
// entry under this key always belongs to this reservation.
func (p *Plane) detach(res *Reservation) {
	v, ok := p.valves[res.ID]
	if !ok {
		return
	}
	v.off = true
	delete(p.valves, res.ID)
	if _, isCL := v.gen.(*traffic.ClosedLoop); isCL {
		delete(p.feedback, flowKey{res.Req.Src, res.Req.Dst, res.Req.Class})
	}
}

// refit re-derives output o's SSVC Vticks from the granted rates — the
// PR 3 live-reconfiguration machinery, now driven by every accepted
// mutation.
func (p *Plane) refit(o int) {
	ssvc, ok := p.sw.Arbiter(o).(*core.SSVC)
	if !ok {
		p.fail(fmt.Errorf("ctlplane: output %d arbiter is not an SSVC", o))
		return
	}
	if err := ssvc.SetVticks(p.tab.Vticks(o, p.vtArena)); err != nil {
		p.fail(fmt.Errorf("ctlplane: refit output %d: %w", o, err))
	}
}

// refitAll re-derives every output.
func (p *Plane) refitAll() {
	for o := 0; o < p.cfg.Radix; o++ {
		p.refit(o)
	}
}

// failStop is the switch's fail-stop hook: revoke what the dead port
// carried, apply the degrade-vs-reject policy, and re-derive Vticks.
// Fail-stop cycles come from the journaled faults schedule, so replay
// re-derives identical revocations — nothing to journal here.
func (p *Plane) failStop(now noc.Cycle, f faults.FailStop) {
	revoked := p.tab.FailStop(f)
	for _, res := range revoked {
		p.detach(res)
		p.stats.Revoked++
	}
	p.refitAll()
}

// expire reclaims a lease whose cycle has come. Stale heap entries
// (reservation removed or re-leased since) are skipped.
func (p *Plane) expire(e leaseEntry, now noc.Cycle) {
	res := p.tab.Get(e.id)
	if res == nil || res.ExpiresAt != e.at {
		return
	}
	if _, rej := p.tab.Remove(e.id, now); rej != nil {
		return
	}
	p.detach(res)
	p.refit(res.Req.Dst)
	p.stats.Expired++
}

// settle fires every deterministic event due at or before the current
// cycle: lease expirations first, then the snapshot checkpoint. Called
// at every Advance boundary, so the canonical order at a cycle C is
// expiries(C), snapshot(C), then commands applied at C, then the step
// into C — replay reproduces exactly this order.
func (p *Plane) settle() {
	now := p.sw.Now()
	for len(p.leases) > 0 && p.leases[0].at <= now {
		e := p.leases.pop()
		p.expire(e, now)
	}
	if p.cfg.SnapEvery > 0 {
		for p.snapAt <= now {
			p.checkpoint(KindSnap)
			p.snapAt += p.cfg.SnapEvery
		}
	}
}

// checkpoint writes a snapshot (or end) record and fsyncs it.
func (p *Plane) checkpoint(kind string) {
	if p.jr == nil {
		return
	}
	rec := &Record{Kind: kind, Snap: p.snapRecord()}
	if err := p.jr.Append(rec); err != nil {
		p.fail(err)
		return
	}
	if err := p.jr.Sync(); err != nil {
		p.fail(err)
	}
}

// snapRecord captures the current verification state.
func (p *Plane) snapRecord() *SnapRecord {
	return &SnapRecord{
		Cycle:     p.sw.Now(),
		Seq:       p.seqNo,
		Table:     p.tab.State(),
		Counters:  p.sw.Totals(),
		Delivered: p.delivered,
		TraceHash: p.traceHash,
	}
}

// Finish writes the clean-shutdown end record.
//
//ssvc:serial-only
func (p *Plane) Finish() error {
	p.checkpoint(KindEnd)
	return p.Err()
}

// CloseJournal detaches and closes the journal, if any.
func (p *Plane) CloseJournal() error {
	if p.jr == nil {
		return nil
	}
	jr := p.jr
	p.jr = nil
	return jr.Close()
}

// Advance drives the simulation n cycles, firing lease expirations and
// snapshots at their deterministic cycles along the way. With the
// control plane idle (no due events) the whole span runs as a single
// engine call, so an attached-but-idle plane adds no per-cycle work or
// allocation to the hot loop.
//
//ssvc:serial-only
func (p *Plane) Advance(n noc.Cycle) error {
	end := p.sw.Now() + n
	for {
		if err := p.Err(); err != nil {
			return err
		}
		p.settle()
		now := p.sw.Now()
		if now >= end {
			return p.Err()
		}
		next := end
		if len(p.leases) > 0 && p.leases[0].at < next {
			next = p.leases[0].at
		}
		if p.cfg.SnapEvery > 0 && p.snapAt < next {
			next = p.snapAt
		}
		p.sw.Run(noc.SatSub(next, now))
		if p.sw.Now() == now {
			// A frozen engine makes Run a no-op; Err above will report it
			// next iteration, but never spin here.
			return p.Err()
		}
	}
}

// AdvanceTo drives the simulation to an absolute cycle.
//
//ssvc:serial-only
func (p *Plane) AdvanceTo(c noc.Cycle) error {
	now := p.sw.Now()
	if c < now {
		return fmt.Errorf("ctlplane: cannot advance backwards to cycle %d from %d", c.Uint(), now.Uint())
	}
	return p.Advance(noc.SatSub(c, now))
}
