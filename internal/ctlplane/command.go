package ctlplane

import (
	"fmt"
	"strconv"
	"strings"

	"swizzleqos/internal/noc"
)

// Op is a control-plane command verb.
type Op uint8

const (
	// OpAdd admits a new GB or GL reservation (optionally leased).
	OpAdd Op = iota
	// OpRemove revokes a reservation by id.
	OpRemove
	// OpResize changes a reservation's reserved rate and/or lease.
	OpResize
	// OpBudget changes one output's GB budget share.
	OpBudget
	// OpPolicy switches the budget-shrink policy (degrade vs reject).
	OpPolicy
)

// String returns the line-protocol verb.
func (op Op) String() string {
	switch op {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpResize:
		return "resize"
	case OpBudget:
		return "budget"
	case OpPolicy:
		return "policy"
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// FlowReq is the client-visible description of a requested reservation.
type FlowReq struct {
	Src       int       `json:"src"`
	Dst       int       `json:"dst"`
	Class     noc.Class `json:"class"`
	Rate      float64   `json:"rate"`
	PacketLen int       `json:"len"`

	// Latency is the GL latency constraint L_n in cycles (Eq. 1-3);
	// Burst is the requested GL burst sigma in packets. GL only.
	Latency noc.Cycle `json:"latency,omitempty"`
	Burst   int       `json:"burst,omitempty"`

	// Users > 0 attaches a closed-loop request/response source with that
	// population (traffic.ClosedLoop); 0 attaches an open-loop source.
	Users int `json:"users,omitempty"`
	// Load is the open-loop offered load in flits/cycle; 0 means offer
	// exactly the reserved rate.
	Load float64 `json:"load,omitempty"`
}

// Spec returns the noc flow contract for the requested reservation.
func (r FlowReq) Spec() noc.FlowSpec {
	return noc.FlowSpec{Src: r.Src, Dst: r.Dst, Class: r.Class, Rate: r.Rate, PacketLength: r.PacketLen}
}

// Command is one control-plane mutation. Accepted commands are journaled
// verbatim with their apply cycle, so the struct is the durable wire
// format as well as the API surface.
type Command struct {
	Op   Op       `json:"op"`
	Flow *FlowReq `json:"flow,omitempty"` // add

	ID   uint64  `json:"id,omitempty"`   // remove/resize target
	Rate float64 `json:"rate,omitempty"` // resize: new rate (0 = unchanged)

	// Lease is a lease duration in cycles from the apply cycle; the
	// reservation expires deterministically at apply+Lease. SetLease
	// distinguishes "no lease change" from "clear the lease" on resize.
	Lease    noc.Cycle `json:"lease,omitempty"`
	SetLease bool      `json:"setLease,omitempty"`

	Output int     `json:"output,omitempty"` // budget
	Share  float64 `json:"share,omitempty"`  // budget

	Degrade bool `json:"degrade,omitempty"` // policy

	// Tag identifies a scripted command across daemon restarts, so a
	// resume can skip script entries its journal already holds.
	Tag string `json:"tag,omitempty"`
}

// Validate structurally checks a command at the trust boundary: Apply
// refuses anything malformed before touching admission state, whether
// the command arrived from the line protocol, a script, or journal
// replay. Field semantics against the switch geometry (radix bounds,
// budget fit, GL schedulability) are the admission table's job; this
// check guarantees the command's shape and that its floats are not
// NaN.
//
//ssvc:barrier
func (c Command) Validate() error {
	switch c.Op {
	case OpAdd:
		if c.Flow == nil {
			return fmt.Errorf("add without a flow")
		}
	case OpRemove, OpResize, OpBudget, OpPolicy:
	default:
		return fmt.Errorf("unknown op %v", c.Op)
	}
	// Accepting comparisons: NaN fails and is rejected here instead of
	// reaching the fixed-point budget math.
	if c.Rate != 0 && !(c.Rate > 0 && c.Rate <= 1) {
		return fmt.Errorf("resize rate %g outside (0,1]", c.Rate)
	}
	if c.Op == OpBudget && !(c.Share >= 0 && c.Share <= 1) {
		return fmt.Errorf("budget share %g outside [0,1]", c.Share)
	}
	return nil
}

// Reason is a typed rejection cause returned to clients.
type Reason string

const (
	// ReasonBadRequest: the command is malformed for this switch.
	ReasonBadRequest Reason = "bad-request"
	// ReasonExists: the (src,dst,class) triple already has an active
	// reservation; resize or remove it instead.
	ReasonExists Reason = "exists"
	// ReasonNotFound: no active reservation with the given id.
	ReasonNotFound Reason = "not-found"
	// ReasonGBBudget: admitting would over-commit the output's GB
	// Vtick budget.
	ReasonGBBudget Reason = "gb-budget"
	// ReasonGLBudget: admitting would over-commit the output's GL
	// bandwidth share.
	ReasonGLBudget Reason = "gl-budget"
	// ReasonGLBound: the Eq. 1-3 guaranteed-latency analysis cannot
	// schedule the requested set (worst-case wait exceeds a constraint,
	// or a requested burst exceeds its Eq. 2-3 budget).
	ReasonGLBound Reason = "gl-bound"
	// ReasonPortDown: the source or destination port has fail-stopped.
	ReasonPortDown Reason = "port-down"
	// ReasonFrozen: the simulation froze sick; no further mutations.
	ReasonFrozen Reason = "frozen"
	// ReasonJournal: the command was admitted but could not be made
	// durable; the plane freezes rather than diverge from its journal.
	ReasonJournal Reason = "journal"
)

// Result is the response to one command.
type Result struct {
	OK    bool
	ID    uint64 // reservation id (add: assigned; remove/resize: echoed)
	Cycle noc.Cycle

	Reason Reason
	// RetryAfter hints how many cycles until the rejection might clear
	// (the earliest lease expiry at the contended output); 0 = no hint.
	RetryAfter noc.Cycle
	Msg        string
}

// String renders the line-protocol response.
func (r Result) String() string {
	if r.OK {
		return fmt.Sprintf("ok id=%d cycle=%d", r.ID, r.Cycle.Uint())
	}
	s := fmt.Sprintf("err reason=%s cycle=%d", r.Reason, r.Cycle.Uint())
	if r.RetryAfter > 0 {
		s += fmt.Sprintf(" retry-after=%d", r.RetryAfter.Uint())
	}
	if r.Msg != "" {
		s += fmt.Sprintf(" msg=%q", r.Msg)
	}
	return s
}

// ParseCommand parses one line-protocol command:
//
//	add gb <src> <dst> rate=<f> len=<n> [lease=<cycles>] [users=<n>] [load=<f>]
//	add gl <src> <dst> rate=<f> len=<n> latency=<cycles> burst=<n> [lease=<cycles>] [users=<n>]
//	remove <id>
//	resize <id> [rate=<f>] [lease=<cycles>]
//	budget <output> share=<f>
//	policy degrade|reject
//
// lease=0 on resize clears an existing lease.
func ParseCommand(line string) (Command, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Command{}, fmt.Errorf("ctlplane: empty command")
	}
	switch fields[0] {
	case "add":
		return parseAdd(fields[1:])
	case "remove":
		if len(fields) != 2 {
			return Command{}, fmt.Errorf("ctlplane: usage: remove <id>")
		}
		id, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return Command{}, fmt.Errorf("ctlplane: bad id %q", fields[1])
		}
		return Command{Op: OpRemove, ID: id}, nil
	case "resize":
		return parseResize(fields[1:])
	case "budget":
		return parseBudget(fields[1:])
	case "policy":
		if len(fields) != 2 || (fields[1] != "degrade" && fields[1] != "reject") {
			return Command{}, fmt.Errorf("ctlplane: usage: policy degrade|reject")
		}
		return Command{Op: OpPolicy, Degrade: fields[1] == "degrade"}, nil
	}
	return Command{}, fmt.Errorf("ctlplane: unknown command %q", fields[0])
}

func parseAdd(fields []string) (Command, error) {
	if len(fields) < 3 {
		return Command{}, fmt.Errorf("ctlplane: usage: add gb|gl <src> <dst> key=value...")
	}
	req := FlowReq{}
	switch fields[0] {
	case "gb":
		req.Class = noc.GuaranteedBandwidth
	case "gl":
		req.Class = noc.GuaranteedLatency
	default:
		return Command{}, fmt.Errorf("ctlplane: add class must be gb or gl, got %q", fields[0])
	}
	var err error
	if req.Src, err = strconv.Atoi(fields[1]); err != nil {
		return Command{}, fmt.Errorf("ctlplane: bad src %q", fields[1])
	}
	if req.Dst, err = strconv.Atoi(fields[2]); err != nil {
		return Command{}, fmt.Errorf("ctlplane: bad dst %q", fields[2])
	}
	cmd := Command{Op: OpAdd}
	for _, kv := range fields[3:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Command{}, fmt.Errorf("ctlplane: expected key=value, got %q", kv)
		}
		switch key {
		case "rate":
			req.Rate, err = strconv.ParseFloat(val, 64)
		case "len":
			req.PacketLen, err = strconv.Atoi(val)
		case "latency":
			var n uint64
			n, err = strconv.ParseUint(val, 10, 64)
			req.Latency = noc.CycleOf(n)
		case "burst":
			req.Burst, err = strconv.Atoi(val)
		case "users":
			req.Users, err = strconv.Atoi(val)
		case "load":
			req.Load, err = strconv.ParseFloat(val, 64)
		case "lease":
			var n uint64
			n, err = strconv.ParseUint(val, 10, 64)
			cmd.Lease, cmd.SetLease = noc.CycleOf(n), true
		default:
			return Command{}, fmt.Errorf("ctlplane: unknown add option %q", key)
		}
		if err != nil {
			return Command{}, fmt.Errorf("ctlplane: bad value %q for %s", val, key)
		}
	}
	cmd.Flow = &req
	return cmd, nil
}

func parseResize(fields []string) (Command, error) {
	if len(fields) < 1 {
		return Command{}, fmt.Errorf("ctlplane: usage: resize <id> [rate=<f>] [lease=<cycles>]")
	}
	id, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return Command{}, fmt.Errorf("ctlplane: bad id %q", fields[0])
	}
	cmd := Command{Op: OpResize, ID: id}
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Command{}, fmt.Errorf("ctlplane: expected key=value, got %q", kv)
		}
		switch key {
		case "rate":
			cmd.Rate, err = strconv.ParseFloat(val, 64)
		case "lease":
			var n uint64
			n, err = strconv.ParseUint(val, 10, 64)
			cmd.Lease, cmd.SetLease = noc.CycleOf(n), true
		default:
			return Command{}, fmt.Errorf("ctlplane: unknown resize option %q", key)
		}
		if err != nil {
			return Command{}, fmt.Errorf("ctlplane: bad value %q for %s", val, key)
		}
	}
	return cmd, nil
}

func parseBudget(fields []string) (Command, error) {
	if len(fields) != 2 {
		return Command{}, fmt.Errorf("ctlplane: usage: budget <output> share=<f>")
	}
	out, err := strconv.Atoi(fields[0])
	if err != nil {
		return Command{}, fmt.Errorf("ctlplane: bad output %q", fields[0])
	}
	key, val, ok := strings.Cut(fields[1], "=")
	if !ok || key != "share" {
		return Command{}, fmt.Errorf("ctlplane: usage: budget <output> share=<f>")
	}
	share, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return Command{}, fmt.Errorf("ctlplane: bad share %q", val)
	}
	return Command{Op: OpBudget, Output: out, Share: share}, nil
}

// Scheduled is one scripted command with its deterministic apply cycle.
type Scheduled struct {
	At  noc.Cycle
	Cmd Command
}

// ParseScript parses a command script: one `@<cycle> <command>` per
// line, '#' comments and blank lines ignored, cycles non-decreasing.
// Each command is tagged with its line number so a resumed daemon can
// skip entries its journal already holds.
func ParseScript(text string) ([]Scheduled, error) {
	var out []Scheduled
	var last noc.Cycle
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "@") {
			return nil, fmt.Errorf("ctlplane: script line %d: expected @<cycle> <command>", i+1)
		}
		at, rest, _ := strings.Cut(line[1:], " ")
		n, err := strconv.ParseUint(at, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ctlplane: script line %d: bad cycle %q", i+1, at)
		}
		cmd, err := ParseCommand(rest)
		if err != nil {
			return nil, fmt.Errorf("ctlplane: script line %d: %w", i+1, err)
		}
		cmd.Tag = fmt.Sprintf("L%d", i+1)
		at2 := noc.CycleOf(n)
		if at2 < last {
			return nil, fmt.Errorf("ctlplane: script line %d: cycle %d before previous %d", i+1, n, last.Uint())
		}
		last = at2
		out = append(out, Scheduled{At: at2, Cmd: cmd})
	}
	return out, nil
}
