package ctlplane

import (
	"testing"

	"swizzleqos/internal/noc"
)

// BenchmarkCtlPlaneIdle measures the steady-state cycle cost with the
// control plane attached but quiescent: live reservations generated
// through the plane's own admission path, one lease parked far past the
// run, no journal and no snapshot grid. The acceptance bar is zero
// allocations per cycle — attaching the control plane must not
// reintroduce heap traffic into the engine's hot loop (the same
// invariant benchguard gates for the bare switch benchmarks).
func BenchmarkCtlPlaneIdle(b *testing.B) {
	p, err := New(SimConfig{Radix: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cmds := []string{
		"add gb 0 1 rate=0.30 len=8 load=0.60",
		"add gb 2 3 rate=0.25 len=8 load=0.50",
		"add gl 4 5 rate=0.03 len=4 latency=400 burst=2",
		"add gb 6 7 rate=0.20 len=8 load=0.40 lease=1000000000",
	}
	for _, line := range cmds {
		cmd, err := ParseCommand(line)
		if err != nil {
			b.Fatal(err)
		}
		if res := p.Apply(cmd); !res.OK {
			b.Fatalf("apply %q: %v", line, res)
		}
	}
	// Warm until the packet pool's high-water mark settles, so a short
	// guarded run sees no late pool-growth allocations.
	if err := p.Advance(20000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := p.Advance(noc.Cycle(b.N)); err != nil {
		b.Fatal(err)
	}
}
