// Journal format (see DESIGN.md "Control plane"): a JSONL file where
// every line is a CRC-framed record,
//
//	{"crc":<IEEE CRC32 of the rec bytes>,"rec":{...}}
//
// The first record is the header (format version + the full simulation
// configuration, seed included); after it come accepted commands with
// their apply cycles, periodic fsync'd snapshots, and a final end
// record on clean shutdown. Rejected commands are never journaled (they
// change no state), and lease expirations are not journaled either:
// they fire at cycles derived deterministically from the admitted
// commands, so replay re-derives them.
//
// Recovery is deterministic re-execution from genesis: the header
// rebuilds the identical simulation, commands re-apply at their stamped
// cycles, and every snapshot along the way is verified against the
// re-executed state (trace hash, counters, admission table). A torn
// tail — the bytes of a record interrupted by a crash — fails its CRC
// or its JSON parse and is truncated with a warning; corruption before
// the last record is a hard error, never silent divergence.
package ctlplane

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"

	"swizzleqos/internal/fabric"
	"swizzleqos/internal/noc"
)

// JournalVersion is the on-disk format version.
const JournalVersion = 1

// Record kinds.
const (
	KindHeader = "header"
	KindCmd    = "cmd"
	KindSnap   = "snap"
	KindEnd    = "end" // a snapshot marking a clean shutdown
)

// Record is one journal entry.
type Record struct {
	Kind   string      `json:"kind"`
	Header *Header     `json:"header,omitempty"`
	Cmd    *CmdRecord  `json:"cmd,omitempty"`
	Snap   *SnapRecord `json:"snap,omitempty"`
}

// Header is the genesis record: everything needed to rebuild the
// simulation bit-for-bit.
type Header struct {
	Version int       `json:"version"`
	Sim     SimConfig `json:"sim"`
}

// CmdRecord is one accepted command with its apply cycle and, for adds,
// the reservation id the admission table assigned.
type CmdRecord struct {
	Seq   uint64    `json:"seq"`
	Cycle noc.Cycle `json:"cycle"`
	ID    uint64    `json:"id,omitempty"`
	Cmd   Command   `json:"cmd"`
}

// SnapRecord is a verification checkpoint: the control-plane state and
// a digest of the simulation at a cycle. Replay re-derives all of it
// and fails loudly on any mismatch.
type SnapRecord struct {
	Cycle     noc.Cycle       `json:"cycle"`
	Seq       uint64          `json:"seq"` // command sequence watermark
	Table     TableState      `json:"table"`
	Counters  fabric.Counters `json:"counters"`
	Delivered uint64          `json:"delivered"`
	TraceHash uint64          `json:"traceHash"`
}

// frame is the CRC envelope around each record line.
type frame struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Journal is an append-only record writer. Append buffers; Sync flushes
// and fsyncs — the Plane syncs after every accepted command and after
// every snapshot, so an acknowledged command is never lost.
type Journal struct {
	f    *os.File
	w    *bufio.Writer
	path string
}

// CreateJournal creates (truncating) a journal file.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ctlplane: create journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// AppendJournal opens an existing journal for appending (resume after
// recovery). The caller must have truncated any torn tail first.
func AppendJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ctlplane: open journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), path: path}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append writes one CRC-framed record line.
func (j *Journal) Append(rec *Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("ctlplane: marshal journal record: %w", err)
	}
	fr := frame{CRC: crc32.ChecksumIEEE(raw), Rec: raw}
	line, err := json.Marshal(fr)
	if err != nil {
		return fmt.Errorf("ctlplane: marshal journal frame: %w", err)
	}
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("ctlplane: write journal: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("ctlplane: write journal: %w", err)
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file.
func (j *Journal) Sync() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("ctlplane: flush journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ctlplane: fsync journal: %w", err)
	}
	return nil
}

// Close flushes, fsyncs, and closes the file.
func (j *Journal) Close() error {
	if err := j.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// decodeRecord parses and CRC-checks one journal line.
func decodeRecord(line []byte) (Record, error) {
	var fr frame
	if err := json.Unmarshal(line, &fr); err != nil {
		return Record{}, fmt.Errorf("frame parse: %w", err)
	}
	if got := crc32.ChecksumIEEE(fr.Rec); got != fr.CRC {
		return Record{}, fmt.Errorf("crc mismatch: recorded %08x, computed %08x", fr.CRC, got)
	}
	var rec Record
	if err := json.Unmarshal(fr.Rec, &rec); err != nil {
		return Record{}, fmt.Errorf("record parse: %w", err)
	}
	return rec, nil
}

// DecodeJournal parses journal bytes, tolerating a torn tail: the
// records of every complete, CRC-valid line are returned along with the
// byte offset where valid data ends (== len(data) for a clean journal)
// and a human-readable warning when a tail was discarded. Damage
// anywhere before the final line is corruption, not a torn write, and
// returns an error instead of a silently shortened history.
func DecodeJournal(data []byte) (recs []Record, validEnd int64, warn string, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		line := data[off:]
		complete := nl >= 0
		if complete {
			line = data[off : off+nl]
		}
		rec, derr := decodeRecord(line)
		if derr != nil {
			rest := 0
			if complete {
				rest = len(data) - (off + nl + 1)
			}
			if rest > 0 {
				return nil, 0, "", fmt.Errorf("ctlplane: journal corrupt at byte %d (%v) with %d bytes of later records; refusing to replay a hole", off, derr, rest)
			}
			return recs, int64(off), fmt.Sprintf("discarded torn journal tail: %d byte(s) at offset %d (%v); recovered %d complete record(s)",
				len(data)-off, off, derr, len(recs)), nil
		}
		if !complete {
			// A record that parses and passes its CRC but lost only the
			// trailing newline: content is intact, keep it.
			recs = append(recs, rec)
			return recs, int64(len(data)), fmt.Sprintf("journal tail missing trailing newline at offset %d; last record intact", off), nil
		}
		recs = append(recs, rec)
		off += nl + 1
	}
	return recs, int64(off), "", nil
}

// ReadJournal reads and decodes a journal file (see DecodeJournal).
// A missing file returns zero records and no error.
func ReadJournal(path string) (recs []Record, validEnd int64, warn string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, "", nil
		}
		return nil, 0, "", fmt.Errorf("ctlplane: read journal: %w", err)
	}
	return DecodeJournal(data)
}
