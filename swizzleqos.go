// Package swizzleqos is a cycle-accurate model of quality-of-service
// arbitration for a single-stage, high-radix crossbar switch (the Swizzle
// Switch), reproducing the DAC 2014 paper "Quality-of-Service for a
// High-Radix Switch".
//
// The switch supports three traffic classes:
//
//   - Best-Effort (BE): least-recently-granted arbitration, lowest
//     priority.
//   - Guaranteed-Bandwidth (GB): per-flow reserved fractions of each
//     output channel, enforced by SSVC — the Swizzle Switch Virtual Clock
//     — which compares coarse, thermometer-coded virtual clocks and breaks
//     ties with LRG, all in a single arbitration cycle.
//   - Guaranteed-Latency (GL): highest priority with a small shared
//     bandwidth reservation and an analytic worst-case waiting-time bound.
//
// # Quick start
//
//	cfg := swizzleqos.DefaultConfig(8)
//	net, err := swizzleqos.New(cfg,
//	    swizzleqos.Workload{
//	        Spec:   swizzleqos.FlowSpec{Src: 0, Dst: 7, Class: swizzleqos.GuaranteedBandwidth, Rate: 0.25, PacketLength: 8},
//	        Inject: swizzleqos.Inject.Bernoulli(0.20, 1),
//	    },
//	)
//	if err != nil { ... }
//	net.Run(10_000)               // warm up
//	net.StartMeasurement()
//	net.Run(100_000)
//	report := net.Report()
//	fmt.Println(report.Table())
//
// Subpackages under internal/ hold the building blocks: the cycle-accurate
// switch (switchsim), the SSVC arbitration core (core), the baseline
// arbiters (arb), the structural wire model (circuit), workload generators
// (traffic), hardware cost models (hwmodel), the guaranteed-latency bound
// (glbound), and the paper's full experiment harness (experiments).
package swizzleqos

import (
	"fmt"

	"swizzleqos/internal/arb"
	"swizzleqos/internal/core"
	"swizzleqos/internal/glbound"
	"swizzleqos/internal/hwmodel"
	"swizzleqos/internal/noc"
)

// Class is a traffic class (BE, GB, or GL).
type Class = noc.Class

// Traffic classes in increasing priority order.
const (
	BestEffort          = noc.BestEffort
	GuaranteedBandwidth = noc.GuaranteedBandwidth
	GuaranteedLatency   = noc.GuaranteedLatency
)

// FlowSpec describes a flow's traffic contract: source, destination,
// class, reserved rate (fraction of the output channel, in flits/cycle),
// and packet length in flits.
type FlowSpec = noc.FlowSpec

// Packet is a delivered message with its timestamps; see the noc package
// for the latency accessors.
type Packet = noc.Packet

// Cycle is a point in (or span of) simulated real time, in switch-clock
// cycles; VTime is virtual-clock time (auxVC counters, Vticks, stamps).
// See internal/noc for the domain discipline and conversion helpers.
type (
	Cycle = noc.Cycle
	VTime = noc.VTime
)

// CycleOf enters the real-time domain from a raw cycle count, for
// configuration boundaries (flags, JSON scenarios).
func CycleOf(n uint64) Cycle { return noc.CycleOf(n) }

// VTimeOf enters the virtual-clock domain from a raw count.
func VTimeOf(n uint64) VTime { return noc.VTimeOf(n) }

// CounterPolicy selects how SSVC's finite auxVC counters handle
// saturation.
type CounterPolicy = core.CounterPolicy

// Counter policies (§3.1): SubtractRealTime clamps and relies on the
// periodic real-time subtraction; Halve and Reset additionally rescale all
// counters when any saturates, trading strict rate proportionality for
// latency fairness.
const (
	SubtractRealTime = core.SubtractRealTime
	Halve            = core.Halve
	Reset            = core.Reset
)

// Arbitration selects the output-arbiter family for the whole switch.
type Arbitration int

const (
	// SSVC is the paper's QoS arbitration (default).
	SSVC Arbitration = iota
	// LRG is the plain least-recently-granted Swizzle Switch — the
	// no-QoS baseline.
	LRG
	// RoundRobin is rotating-priority arbitration.
	RoundRobin
	// OriginalVirtualClock uses exact per-packet Virtual Clock stamps
	// (the Figure 5 baseline).
	OriginalVirtualClock
	// FixedPriority is the prior Swizzle Switch multi-level message QoS
	// [14]: strict class priority with no bandwidth regulation.
	FixedPriority
)

// String returns the arbitration family name.
func (a Arbitration) String() string {
	switch a {
	case SSVC:
		return "SSVC"
	case LRG:
		return "LRG"
	case RoundRobin:
		return "RoundRobin"
	case OriginalVirtualClock:
		return "OriginalVirtualClock"
	case FixedPriority:
		return "FixedPriority"
	}
	return fmt.Sprintf("Arbitration(%d)", int(a))
}

// GLConfig reserves a small shared fraction of every output channel for
// the guaranteed-latency class and bounds its bursts.
type GLConfig struct {
	// Rate is the reserved fraction of each output channel (e.g. 0.05).
	Rate float64
	// PacketLength is the nominal GL packet length used to derive the
	// policing tick.
	PacketLength int
	// Burst is the number of GL packets the leaky bucket admits
	// back-to-back before deferring further GL traffic.
	Burst int
}

// Config describes a QoS-enabled switch.
type Config struct {
	// Radix is the number of input and output ports.
	Radix int
	// BusWidthBits is the output channel width; it determines the
	// number of arbitration lanes (BusWidthBits / Radix) and with them
	// the thermometer-code resolution available to SSVC.
	BusWidthBits int

	// Arbitration selects the arbiter family; the zero value is SSVC.
	Arbitration Arbitration
	// Policy is SSVC's finite-counter policy.
	Policy CounterPolicy
	// CounterBits and SigBits size the auxVC counters. Zero values pick
	// a default: SigBits from the lane budget (capped at 4) and
	// CounterBits = SigBits + 8, matching the paper's 3+8 / 4-significant
	// configurations.
	CounterBits int
	SigBits     int

	// Per-class input buffering in flits. Zero values default to 16
	// (BE, GL) and 16 per output queue (GB).
	BEBufferFlits int
	GLBufferFlits int
	GBBufferFlits int

	// PacketChaining elides the arbitration cycle for back-to-back
	// packets at one crosspoint [10].
	PacketChaining bool

	// GL configures the guaranteed-latency class reservation; the zero
	// value disables GL policing but still gives GL packets top
	// priority when Arbitration is SSVC.
	GL GLConfig
}

// DefaultConfig returns the paper's baseline configuration for a switch of
// the given radix: a 128-bit bus (256-bit from radix 33 up, 512-bit from
// 65), 16-flit buffers, SSVC with the subtract-real-time policy, and a 5%
// GL reservation with 4-flit packets.
func DefaultConfig(radix int) Config {
	bus := 128
	if radix > 64 {
		bus = radix * 8
	} else if radix > 32 {
		bus = 256
	}
	return Config{
		Radix:         radix,
		BusWidthBits:  bus,
		Arbitration:   SSVC,
		Policy:        SubtractRealTime,
		BEBufferFlits: 16,
		GLBufferFlits: 16,
		GBBufferFlits: 16,
		GL:            GLConfig{Rate: 0.05, PacketLength: 4, Burst: 4},
	}
}

func (c *Config) fillDefaults(enableGL bool) error {
	if c.BEBufferFlits == 0 {
		c.BEBufferFlits = 16
	}
	if c.GLBufferFlits == 0 {
		c.GLBufferFlits = 16
	}
	if c.GBBufferFlits == 0 {
		c.GBBufferFlits = 16
	}
	plan, err := core.PlanLanes(c.BusWidthBits, c.Radix, enableGL, true)
	if err != nil {
		return err
	}
	if c.SigBits == 0 {
		c.SigBits = plan.MaxSigBits()
		if c.SigBits > 4 {
			c.SigBits = 4
		}
		if c.SigBits == 0 {
			return fmt.Errorf("swizzleqos: %d-bit bus with radix %d leaves no thermometer level for the GB class",
				c.BusWidthBits, c.Radix)
		}
	}
	if c.SigBits > plan.MaxSigBits() {
		return fmt.Errorf("swizzleqos: %d significant bits need %d GB lanes; a %d-bit bus with radix %d provides %d",
			c.SigBits, 1<<c.SigBits, c.BusWidthBits, c.Radix, plan.GBLanes)
	}
	if c.CounterBits == 0 {
		c.CounterBits = c.SigBits + 8
	}
	return nil
}

// arbFactory builds the per-output arbiter constructor for the configured
// arbitration family.
func (c Config) arbFactory(specs []noc.FlowSpec) (func(int) arb.Arbiter, error) {
	vticksFor := func(out int) []noc.VTime {
		vt := make([]noc.VTime, c.Radix)
		for _, s := range specs {
			if s.Dst == out && s.Class == noc.GuaranteedBandwidth {
				vt[s.Src] = s.Vtick()
			}
		}
		return vt
	}
	switch c.Arbitration {
	case SSVC:
		glVtick := noc.VTime(0)
		if c.GL.Rate > 0 {
			glVtick = noc.FlowSpec{Rate: c.GL.Rate, PacketLength: c.GL.PacketLength}.Vtick()
		}
		return func(out int) arb.Arbiter {
			return core.NewSSVC(core.Config{
				Radix:       c.Radix,
				CounterBits: c.CounterBits,
				SigBits:     c.SigBits,
				Policy:      c.Policy,
				Vticks:      vticksFor(out),
				EnableGL:    true,
				GLVtick:     glVtick,
				GLBurst:     c.GL.Burst,
			})
		}, nil
	case LRG:
		return func(int) arb.Arbiter { return arb.NewLRG(c.Radix) }, nil
	case RoundRobin:
		return func(int) arb.Arbiter { return arb.NewRoundRobin(c.Radix) }, nil
	case OriginalVirtualClock:
		return func(out int) arb.Arbiter { return arb.NewOrigVC(c.Radix, vticksFor(out)) }, nil
	case FixedPriority:
		return func(int) arb.Arbiter { return arb.NewMultiLevel(c.Radix, nil) }, nil
	}
	return nil, fmt.Errorf("swizzleqos: unknown arbitration family %d", int(c.Arbitration))
}

// GLBoundParams re-exports the guaranteed-latency bound parameters (Eq. 1).
type GLBoundParams = glbound.Params

// GLBurstBudget re-exports one flow's admissible burst (Eqs. 2-3).
type GLBurstBudget = glbound.BurstBudget

// GLBurstSizes evaluates the recursive burst-size budgets of Eqs. 2-3 for
// a set of per-flow latency constraints in cycles.
func GLBurstSizes(lmax int, latencies []float64) ([]GLBurstBudget, error) {
	return glbound.BurstSizes(lmax, latencies)
}

// StorageModel re-exports the Table 1 storage cost model.
type StorageModel = hwmodel.StorageConfig

// TimingModel re-exports the Table 2 frequency/area model.
type TimingModel = hwmodel.TimingConfig

// Table1Storage returns the paper's Table 1 configuration (64x64 switch,
// 512-bit buses).
func Table1Storage() StorageModel { return hwmodel.Table1Config() }
