package swizzleqos_test

import (
	"strings"
	"testing"

	"swizzleqos"
)

func gbWorkload(src, dst int, rate float64, inject swizzleqos.Injection) swizzleqos.Workload {
	return swizzleqos.Workload{
		Spec: swizzleqos.FlowSpec{
			Src: src, Dst: dst,
			Class:        swizzleqos.GuaranteedBandwidth,
			Rate:         rate,
			PacketLength: 8,
		},
		Inject: inject,
	}
}

func TestQuickstartFlow(t *testing.T) {
	cfg := swizzleqos.DefaultConfig(8)
	net, err := swizzleqos.New(cfg,
		gbWorkload(0, 7, 0.25, swizzleqos.Inject.Bernoulli(0.20, 1)),
		gbWorkload(1, 7, 0.25, swizzleqos.Inject.Bernoulli(0.20, 2)),
	)
	if err != nil {
		t.Fatal(err)
	}
	net.Run(5000)
	net.StartMeasurement()
	net.Run(50000)
	rep := net.Report()
	if rep == nil {
		t.Fatal("nil report after StartMeasurement")
	}
	if rep.Window() != 50000 {
		t.Fatalf("window = %d, want 50000", rep.Window())
	}
	for _, src := range []int{0, 1} {
		k := swizzleqos.FlowKey{Src: src, Dst: 7, Class: swizzleqos.GuaranteedBandwidth}
		got := rep.Throughput(k)
		if got < 0.18 || got > 0.22 {
			t.Errorf("flow %d throughput %.3f, want ~0.20", src, got)
		}
	}
	if !strings.Contains(rep.Table(), "flits/cycle") {
		t.Error("report table missing header")
	}
}

func TestDefaultConfigBusWidths(t *testing.T) {
	cases := []struct{ radix, bus int }{{8, 128}, {16, 128}, {32, 128}, {64, 256}, {128, 1024}}
	for _, tc := range cases {
		if got := swizzleqos.DefaultConfig(tc.radix).BusWidthBits; got != tc.bus {
			t.Errorf("DefaultConfig(%d).BusWidthBits = %d, want %d", tc.radix, got, tc.bus)
		}
	}
}

func TestReservationsEnforcedUnderCongestion(t *testing.T) {
	cfg := swizzleqos.DefaultConfig(8)
	cfg.GL = swizzleqos.GLConfig{} // GB only
	var workloads []swizzleqos.Workload
	rates := []float64{0.25, 0.2, 0.1, 0.1, 0.05, 0.05, 0.05, 0.05}
	for i, r := range rates {
		workloads = append(workloads, gbWorkload(i, 0, r, swizzleqos.Inject.Backlogged(4)))
	}
	net, err := swizzleqos.New(cfg, workloads...)
	if err != nil {
		t.Fatal(err)
	}
	net.Run(5000)
	net.StartMeasurement()
	net.Run(60000)
	rep := net.Report()
	for i, r := range rates {
		k := swizzleqos.FlowKey{Src: i, Dst: 0, Class: swizzleqos.GuaranteedBandwidth}
		if got := rep.Throughput(k); got < r*0.97 {
			t.Errorf("flow %d accepted %.3f, reserved %.2f", i, got, r)
		}
	}
}

func TestGLInterruptLatency(t *testing.T) {
	cfg := swizzleqos.DefaultConfig(8)
	var workloads []swizzleqos.Workload
	for i := 0; i < 4; i++ {
		workloads = append(workloads, gbWorkload(i, 0, 0.2, swizzleqos.Inject.Backlogged(4)))
	}
	workloads = append(workloads, swizzleqos.Workload{
		Spec: swizzleqos.FlowSpec{
			Src: 7, Dst: 0,
			Class:        swizzleqos.GuaranteedLatency,
			Rate:         0.05,
			PacketLength: 2,
		},
		Inject: swizzleqos.Inject.Trace(10000, 20000, 30000),
	})
	net, err := swizzleqos.New(cfg, workloads...)
	if err != nil {
		t.Fatal(err)
	}
	var worst swizzleqos.Cycle
	var delivered int
	net.OnDeliver(func(p *swizzleqos.Packet) {
		if p.Class == swizzleqos.GuaranteedLatency {
			delivered++
			if w := p.WaitingTime(); w > worst {
				worst = w
			}
		}
	})
	net.Run(40000)
	if delivered != 3 {
		t.Fatalf("delivered %d GL packets, want 3", delivered)
	}
	if worst > 12 {
		t.Fatalf("GL worst wait %d cycles; should only wait for channel release", worst)
	}
}

func TestArbitrationFamilies(t *testing.T) {
	for _, fam := range []swizzleqos.Arbitration{
		swizzleqos.SSVC, swizzleqos.LRG, swizzleqos.RoundRobin,
		swizzleqos.OriginalVirtualClock, swizzleqos.FixedPriority,
	} {
		cfg := swizzleqos.DefaultConfig(4)
		cfg.Arbitration = fam
		net, err := swizzleqos.New(cfg, gbWorkload(0, 1, 0.2, swizzleqos.Inject.Bernoulli(0.1, 3)))
		if err != nil {
			t.Fatalf("%v: %v", fam, err)
		}
		net.StartMeasurement()
		net.Run(20000)
		if net.Report().TotalPackets() == 0 {
			t.Errorf("%v: no packets delivered", fam)
		}
	}
}

func TestArbitrationString(t *testing.T) {
	if swizzleqos.SSVC.String() != "SSVC" || swizzleqos.Arbitration(99).String() != "Arbitration(99)" {
		t.Error("Arbitration.String misbehaves")
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	cfg := swizzleqos.DefaultConfig(8)
	if _, err := swizzleqos.New(cfg); err == nil {
		t.Error("no workloads accepted")
	}
	// Oversubscribed output.
	var over []swizzleqos.Workload
	for i := 0; i < 8; i++ {
		over = append(over, gbWorkload(i, 0, 0.13, swizzleqos.Inject.Backlogged(1)))
	}
	if _, err := swizzleqos.New(cfg, over...); err == nil {
		t.Error("oversubscribed reservations accepted (1.04 + GL 0.05)")
	}
	// Invalid spec.
	bad := gbWorkload(9, 0, 0.1, swizzleqos.Inject.Backlogged(1))
	if _, err := swizzleqos.New(cfg, bad); err == nil {
		t.Error("out-of-range source accepted")
	}
	// SigBits beyond the lane budget.
	cfg2 := swizzleqos.DefaultConfig(8)
	cfg2.SigBits = 5 // needs 32 GB lanes; a 128-bit bus has 16 lanes total
	if _, err := swizzleqos.New(cfg2, gbWorkload(0, 1, 0.1, swizzleqos.Inject.Backlogged(1))); err == nil {
		t.Error("oversized SigBits accepted")
	}
	// Narrow bus with three classes.
	cfg3 := swizzleqos.DefaultConfig(64)
	cfg3.BusWidthBits = 128
	if _, err := swizzleqos.New(cfg3, gbWorkload(0, 1, 0.1, swizzleqos.Inject.Backlogged(1))); err == nil {
		t.Error("radix-64/128-bit with three classes accepted")
	}
}

func TestReportBeforeMeasurement(t *testing.T) {
	net, err := swizzleqos.New(swizzleqos.DefaultConfig(4),
		gbWorkload(0, 1, 0.1, swizzleqos.Inject.Backlogged(1)))
	if err != nil {
		t.Fatal(err)
	}
	if net.Report() != nil {
		t.Error("report before StartMeasurement should be nil")
	}
}

func TestGLBurstSizesExported(t *testing.T) {
	budgets, err := swizzleqos.GLBurstSizes(8, []float64{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(budgets) != 2 || budgets[0].MaxPackets <= 0 {
		t.Fatalf("unexpected budgets: %+v", budgets)
	}
}

func TestHardwareModelsExported(t *testing.T) {
	s := swizzleqos.Table1Storage()
	if s.TotalBytes()/1024 != 1101 {
		t.Fatalf("Table 1 total = %g KB, want 1101", s.TotalBytes()/1024)
	}
	tm := swizzleqos.TimingModel{Radix: 8, ChannelBits: 256}
	if tm.SlowdownPercent() < 8.3 || tm.SlowdownPercent() > 8.5 {
		t.Fatalf("slowdown = %.2f, want ~8.4", tm.SlowdownPercent())
	}
}

func TestPacketChaining(t *testing.T) {
	cfg := swizzleqos.DefaultConfig(4)
	cfg.PacketChaining = true
	cfg.GL = swizzleqos.GLConfig{}
	var ws []swizzleqos.Workload
	for i := 0; i < 4; i++ {
		ws = append(ws, gbWorkload(i, 0, 0.2, swizzleqos.Inject.Backlogged(4)))
	}
	net, err := swizzleqos.New(cfg, ws...)
	if err != nil {
		t.Fatal(err)
	}
	net.Run(2000)
	net.StartMeasurement()
	net.Run(20000)
	if got := net.Report().OutputThroughput(0); got < 0.99 {
		t.Fatalf("chained saturated throughput %.3f, want ~1.0", got)
	}
}

func TestInjectionConstructors(t *testing.T) {
	b := swizzleqos.Inject.Bursty(0.2, 4, 7)
	if b.Kind != swizzleqos.InjectBursty || b.Rate != 0.2 || b.MeanBurst != 4 || b.Seed != 7 {
		t.Fatalf("Bursty constructor wrong: %+v", b)
	}
	p := swizzleqos.Inject.Periodic(100, 3)
	if p.Kind != swizzleqos.InjectPeriodic || p.Interval != 100 || p.Offset != 3 {
		t.Fatalf("Periodic constructor wrong: %+v", p)
	}
	tr := swizzleqos.Inject.Trace(1, 2, 3)
	if tr.Kind != swizzleqos.InjectTrace || len(tr.Times) != 3 {
		t.Fatalf("Trace constructor wrong: %+v", tr)
	}
}

func TestAllInjectionKindsRun(t *testing.T) {
	// Exercise every generator kind through the public constructor path.
	cfg := swizzleqos.DefaultConfig(8)
	spec := func(src int) swizzleqos.FlowSpec {
		return swizzleqos.FlowSpec{Src: src, Dst: 0, Class: swizzleqos.GuaranteedBandwidth,
			Rate: 0.05, PacketLength: 4}
	}
	net, err := swizzleqos.New(cfg,
		swizzleqos.Workload{Spec: spec(0), Inject: swizzleqos.Inject.Bernoulli(0.05, 1)},
		swizzleqos.Workload{Spec: spec(1), Inject: swizzleqos.Inject.Bursty(0.05, 3, 2)},
		swizzleqos.Workload{Spec: spec(2), Inject: swizzleqos.Inject.Periodic(100, 5)},
		swizzleqos.Workload{Spec: spec(3), Inject: swizzleqos.Inject.Backlogged(2)},
		swizzleqos.Workload{Spec: spec(4), Inject: swizzleqos.Inject.Trace(10, 20, 30)},
	)
	if err != nil {
		t.Fatal(err)
	}
	net.StartMeasurement()
	net.Run(20000)
	rep := net.Report()
	if len(rep.Flows()) != 5 {
		t.Fatalf("observed %d flows, want all 5 injection kinds delivering", len(rep.Flows()))
	}
	for _, k := range rep.Flows() {
		if rep.Flow(k) == nil || rep.Flow(k).Packets == 0 {
			t.Errorf("flow %v delivered nothing", k)
		}
	}
	if net.Now() != 20000 {
		t.Errorf("Now() = %d, want 20000", net.Now())
	}
	if got := net.Config(); got.Radix != 8 || got.SigBits == 0 {
		t.Errorf("Config() not default-filled: %+v", got)
	}
	// Unknown injection kind is rejected.
	if _, err := swizzleqos.New(cfg, swizzleqos.Workload{
		Spec:   spec(5),
		Inject: swizzleqos.Injection{Kind: swizzleqos.InjectionKind(99)},
	}); err == nil {
		t.Error("unknown injection kind accepted")
	}
}

func TestArbitrationStrings(t *testing.T) {
	want := map[swizzleqos.Arbitration]string{
		swizzleqos.SSVC:                 "SSVC",
		swizzleqos.LRG:                  "LRG",
		swizzleqos.RoundRobin:           "RoundRobin",
		swizzleqos.OriginalVirtualClock: "OriginalVirtualClock",
		swizzleqos.FixedPriority:        "FixedPriority",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
}

func TestConfigDefaultsCapSigBits(t *testing.T) {
	// A very wide bus would allow 6 significant bits; the default caps
	// at the paper's 4.
	cfg := swizzleqos.DefaultConfig(8)
	cfg.BusWidthBits = 1024
	net, err := swizzleqos.New(cfg, gbWorkload(0, 1, 0.1, swizzleqos.Inject.Backlogged(1)))
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Config().SigBits; got != 4 {
		t.Errorf("defaulted SigBits = %d, want 4", got)
	}
	if got := net.Config().CounterBits; got != 12 {
		t.Errorf("defaulted CounterBits = %d, want 12", got)
	}
}

func TestStartSeries(t *testing.T) {
	net, err := swizzleqos.New(swizzleqos.DefaultConfig(4),
		gbWorkload(0, 1, 0.2, swizzleqos.Inject.Backlogged(2)))
	if err != nil {
		t.Fatal(err)
	}
	series := net.StartSeries(1000)
	net.Run(5000)
	if series.Windows() < 4 {
		t.Fatalf("observed %d windows, want >= 4", series.Windows())
	}
	k := swizzleqos.FlowKey{Src: 0, Dst: 1, Class: swizzleqos.GuaranteedBandwidth}
	if got := series.Throughput(k, 2); got < 0.8 {
		t.Fatalf("window 2 throughput %.3f, want saturated ~8/9", got)
	}
}
