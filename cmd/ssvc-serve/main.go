// Command ssvc-serve runs a crossbar simulation under reservation
// control: a continuously advancing switch whose GB/GL reservations are
// added, resized, and removed live — every mutation passing admission
// control and landing in a crash-safe journal before it is acknowledged
// (see internal/ctlplane and DESIGN.md "Control plane").
//
// Usage:
//
//	ssvc-serve -journal FILE [-script FILE] [-total N] [-listen ADDR]
//	           [-trace FILE] [-pace N] [-radix N] [-seed N] [-snap-every N]
//	           [-gb-share F] [-gl-share F] [-degrade] [-lmax N]
//	           [-fail SPEC] [-shards N] [-shard-workers N]
//	ssvc-serve -replay FILE [-trace FILE] [-shards N] [-shard-workers N]
//
// Serve mode advances the simulation -total cycles, applying commands
// from the -script file (`@<cycle> <command>` lines) at their stamped
// cycles and, when -listen is given, accepting the same line protocol
// over TCP. If the journal file already holds records, the daemon
// recovers: it re-executes the journal from genesis (verifying every
// snapshot), truncates any torn tail with a warning, skips script
// entries already journaled, and continues — the configuration flags
// are ignored in favour of the journal header, so a killed daemon
// restarted with the same arguments finishes the identical run.
//
// -pace throttles wall-clock speed to roughly N simulated cycles per
// millisecond (0 = as fast as possible) so a kill can land mid-run;
// pacing is pure wall-clock mechanism and never changes results.
//
// -fail injects fail-stop faults: comma-separated in<port>@<cycle> or
// out<port>@<cycle> specs, e.g. -fail in3@5000,out1@9000.
//
// Replay mode re-executes a journal and prints the recovered state;
// with -trace it also writes the re-derived delivery trace. Replaying
// the journal of a completed run must reproduce the identical trace and
// counters, byte for byte, at any -shards value.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"swizzleqos/internal/ctlplane"
	"swizzleqos/internal/faults"
	"swizzleqos/internal/noc"
)

func main() {
	os.Exit(serveMain(os.Args[1:], os.Stdout, os.Stderr))
}

// netCmd is one command arriving over the TCP listener.
type netCmd struct {
	cmd   ctlplane.Command
	reply chan ctlplane.Result
}

// serveMain is the testable entry point.
func serveMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssvc-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		journal = fs.String("journal", "", "journal file (serve mode; created if missing, recovered if not)")
		script  = fs.String("script", "", "command script: @<cycle> <command> per line")
		total   = fs.Uint64("total", 100000, "cycles to run before a clean shutdown")
		listen  = fs.String("listen", "", "optional TCP address for live line-protocol commands")
		trace   = fs.String("trace", "", "write the delivery trace (JSONL) to this file")
		pace    = fs.Int("pace", 0, "throttle to ~N simulated cycles per wall millisecond (0 = unthrottled)")
		replay  = fs.String("replay", "", "replay mode: re-execute this journal and exit")

		radix     = fs.Int("radix", 8, "switch radix")
		seed      = fs.Uint64("seed", 1, "workload RNG seed")
		snapEvery = fs.Uint64("snap-every", 10000, "snapshot cadence in cycles (0 = none)")
		gbShare   = fs.Float64("gb-share", 0.85, "initial per-output GB budget share")
		glShare   = fs.Float64("gl-share", 0.05, "per-output GL bandwidth share")
		degrade   = fs.Bool("degrade", false, "start with the degrade budget-shrink policy (default reject)")
		lmax      = fs.Int("lmax", 8, "maximum admissible packet length, flits")
		failSpec  = fs.String("fail", "", "fail-stop schedule: in<port>@<cycle> or out<port>@<cycle>, comma separated")

		shards = fs.Int("shards", 0, "engine shards (<= 1 = serial walk; results identical at any value)")
		shardW = fs.Int("shard-workers", 0, "goroutines for the sharded engine (0 = auto)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var tw *traceWriter
	if *trace != "" {
		var err error
		tw, err = newTraceWriter(*trace)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer tw.Close()
	}
	ro := ctlplane.ReplayOptions{Shards: *shards, ShardWorkers: *shardW}
	if tw != nil {
		ro.OnDeliver = tw.OnDeliver
	}

	if *replay != "" {
		return replayMain(*replay, ro, stdout, stderr)
	}
	if *journal == "" {
		fmt.Fprintln(stderr, "ssvc-serve: -journal is required (or -replay)")
		return 2
	}

	fcfg, err := parseFailSpec(*failSpec)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cfg := ctlplane.SimConfig{
		Radix:        *radix,
		LMax:         *lmax,
		GBShare:      *gbShare,
		GLShare:      *glShare,
		Degrade:      *degrade,
		Seed:         *seed,
		SnapEvery:    noc.CycleOf(*snapEvery),
		Faults:       fcfg,
		Shards:       *shards,
		ShardWorkers: *shardW,
	}

	// Recover or start fresh. Recovery re-executes the journal from
	// genesis; with a trace file attached the re-executed prefix is
	// regenerated too, so the full trace of an interrupted-and-resumed
	// run is byte-identical to an uninterrupted one.
	p, warn, err := ctlplane.RecoverFile(*journal, ro)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if warn != "" {
		fmt.Fprintf(stderr, "ssvc-serve: %s\n", warn)
	}
	done := map[string]bool{}
	if p != nil {
		for _, tag := range journaledTags(*journal) {
			done[tag] = true
		}
		fmt.Fprintf(stdout, "recovered journal %s at cycle %d (%d reservations)\n",
			*journal, p.Now().Uint(), p.Table().Len())
	} else {
		jr, err := ctlplane.CreateJournal(*journal)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if p, err = ctlplane.New(cfg); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if tw != nil {
			p.OnDeliver(tw.OnDeliver)
		}
		if err := p.AttachJournal(jr, true); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	defer p.CloseJournal()

	var sched []ctlplane.Scheduled
	if *script != "" {
		text, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if sched, err = ctlplane.ParseScript(string(text)); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	cmds := make(chan netCmd, 64)
	var ln net.Listener
	if *listen != "" {
		var lerr error
		if ln, lerr = net.Listen("tcp", *listen); lerr != nil {
			fmt.Fprintln(stderr, lerr)
			return 1
		}
		fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())
		go acceptLoop(ln, cmds)
	}

	loopErr := serveLoop(p, sched, done, cmds, noc.CycleOf(*total), *pace, stdout)
	if ln != nil {
		// The serve loop no longer drains cmds: stop new connections and
		// answer in-flight commands with a rejection so no TCP client
		// blocks forever on a reply that will never come.
		ln.Close()
		go drainCmds(cmds, p.Now())
	}
	if loopErr != nil {
		fmt.Fprintln(stderr, loopErr)
		return 1
	}
	if err := p.Finish(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	printSummary(p, stdout)
	return 0
}

// serveLoop drives the plane to the total cycle, interleaving scripted
// and networked commands. Scripted commands apply at exactly their
// stamped cycles (skipping those a recovered journal already holds), so
// a resumed run is indistinguishable from an uninterrupted one.
func serveLoop(p *ctlplane.Plane, sched []ctlplane.Scheduled, done map[string]bool,
	cmds chan netCmd, total noc.Cycle, pace int, stdout io.Writer) error {
	const chunk = 4096
	for {
		now := p.Now()
		for len(sched) > 0 && sched[0].At <= now {
			s := sched[0]
			sched = sched[1:]
			if done[s.Cmd.Tag] || s.At < now {
				continue // already journaled before the crash, or missed (journal has the truth)
			}
			r := p.Apply(s.Cmd)
			fmt.Fprintf(stdout, "@%d %s: %s\n", now.Uint(), s.Cmd.Op, r)
		}
	drain:
		for {
			select {
			case c := <-cmds:
				c.reply <- p.Apply(c.cmd)
			default:
				break drain
			}
		}
		if now >= total {
			return p.Err()
		}
		next := total
		if len(sched) > 0 && sched[0].At < next {
			next = sched[0].At
		}
		step := noc.SatSub(next, now)
		if step > chunk {
			step = chunk
		}
		if err := p.Advance(step); err != nil {
			return err
		}
		if pace > 0 {
			time.Sleep(time.Duration(step.Uint()/uint64(pace)+1) * time.Millisecond)
		}
	}
}

// acceptLoop serves the line protocol on the listener: one command per
// line, one result line back.
func acceptLoop(ln net.Listener, cmds chan netCmd) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			sc := bufio.NewScanner(conn)
			for sc.Scan() {
				line := strings.TrimSpace(sc.Text())
				if line == "" {
					continue
				}
				cmd, err := ctlplane.ParseCommand(line)
				if err != nil {
					fmt.Fprintf(conn, "err reason=bad-request msg=%q\n", err.Error())
					continue
				}
				nc := netCmd{cmd: cmd, reply: make(chan ctlplane.Result, 1)}
				cmds <- nc
				fmt.Fprintf(conn, "%s\n", <-nc.reply)
			}
		}(conn)
	}
}

// drainCmds answers commands that were in flight (or still arriving
// from open connections) when the serve loop stopped: each gets a
// frozen rejection instead of silence. Runs until process exit — the
// channel is never closed because connection goroutines may still send.
func drainCmds(cmds chan netCmd, now noc.Cycle) {
	for c := range cmds {
		c.reply <- ctlplane.Result{
			Cycle:  now,
			Reason: ctlplane.ReasonFrozen,
			Msg:    "run complete, daemon shutting down",
		}
	}
}

// replayMain re-executes a journal and prints the recovered state.
func replayMain(path string, ro ctlplane.ReplayOptions, stdout, stderr io.Writer) int {
	recs, _, warn, err := ctlplane.ReadJournal(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if warn != "" {
		fmt.Fprintf(stderr, "ssvc-serve: %s\n", warn)
	}
	p, err := ctlplane.Rebuild(recs, ro)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	printSummary(p, stdout)
	return 0
}

// printSummary renders the final control-plane state.
func printSummary(p *ctlplane.Plane, w io.Writer) {
	st := p.Stats()
	c := p.Counters()
	fmt.Fprintf(w, "cycle=%d delivered=%d data-cycles=%d trace=%016x\n",
		p.Now().Uint(), p.Delivered(), c.DataCycles, p.TraceHash())
	fmt.Fprintf(w, "admitted=%d rejected=%d expired=%d revoked=%d active=%d\n",
		st.Admitted, st.RejectedBudget+st.RejectedBound+st.RejectedOther,
		st.Expired, st.Revoked, p.Table().Len())
}

// journaledTags collects the script tags already recorded in a journal,
// so a resumed daemon never re-applies a scripted command.
func journaledTags(path string) []string {
	recs, _, _, err := ctlplane.ReadJournal(path)
	if err != nil {
		return nil
	}
	var tags []string
	for _, rec := range recs {
		if rec.Kind == ctlplane.KindCmd && rec.Cmd != nil && rec.Cmd.Cmd.Tag != "" {
			tags = append(tags, rec.Cmd.Cmd.Tag)
		}
	}
	return tags
}

// parseFailSpec parses -fail: in<port>@<cycle> / out<port>@<cycle>.
func parseFailSpec(spec string) (*faults.Config, error) {
	if spec == "" {
		return nil, nil
	}
	cfg := &faults.Config{Seed: 1}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		var input bool
		var rest string
		switch {
		case strings.HasPrefix(part, "in"):
			input, rest = true, part[2:]
		case strings.HasPrefix(part, "out"):
			input, rest = false, part[3:]
		default:
			return nil, fmt.Errorf("ssvc-serve: bad -fail entry %q (want in<port>@<cycle> or out<port>@<cycle>)", part)
		}
		ps, cs, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("ssvc-serve: bad -fail entry %q (missing @<cycle>)", part)
		}
		port, err := strconv.Atoi(ps)
		if err != nil {
			return nil, fmt.Errorf("ssvc-serve: bad -fail port %q", ps)
		}
		at, err := strconv.ParseUint(cs, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ssvc-serve: bad -fail cycle %q", cs)
		}
		cfg.FailStops = append(cfg.FailStops, faults.FailStop{Input: input, Port: port, At: noc.CycleOf(at)})
	}
	return cfg, nil
}

// traceWriter streams one JSON line per delivered packet. The trace of
// a run — live, resumed after a kill, or replayed from the journal —
// must be byte-identical.
type traceWriter struct {
	f *os.File
	w *bufio.Writer
}

func newTraceWriter(path string) (*traceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("ssvc-serve: create trace: %w", err)
	}
	return &traceWriter{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

func (t *traceWriter) OnDeliver(p *noc.Packet) {
	fmt.Fprintf(t.w, `{"id":%d,"src":%d,"dst":%d,"class":%d,"len":%d,"created":%d,"delivered":%d,"retries":%d}`+"\n",
		p.ID, p.Src, p.Dst, p.Class, p.Length, p.CreatedAt.Uint(), p.DeliveredAt.Uint(), p.Retries)
}

func (t *traceWriter) Close() error {
	if err := t.w.Flush(); err != nil {
		t.f.Close()
		return err
	}
	return t.f.Close()
}
