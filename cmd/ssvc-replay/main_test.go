package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleLog = `{"id":1,"src":0,"dst":7,"class":"GB","lengthFlits":8,"createdAt":0,"enqueuedAt":0,"grantedAt":2,"deliveredAt":10}
{"id":2,"src":0,"dst":7,"class":"GB","lengthFlits":8,"createdAt":5,"enqueuedAt":6,"grantedAt":11,"deliveredAt":19}
{"id":3,"src":1,"dst":7,"class":"GL","lengthFlits":2,"createdAt":8,"enqueuedAt":8,"grantedAt":20,"deliveredAt":22}
`

func TestAnalyse(t *testing.T) {
	var out strings.Builder
	if err := analyse(strings.NewReader(sampleLog), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"0->7/GB", "1->7/GL", "3 packets"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestAnalyseRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"not json":     "hello\n",
		"bad class":    `{"id":1,"src":0,"dst":1,"class":"XX","lengthFlits":1,"deliveredAt":5}` + "\n",
		"non-monotone": `{"id":1,"src":0,"dst":1,"class":"BE","lengthFlits":1,"createdAt":9,"enqueuedAt":3,"grantedAt":4,"deliveredAt":5}` + "\n",
	}
	for name, log := range cases {
		var out strings.Builder
		if err := analyse(strings.NewReader(log), &out); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRoundTripWithSimSchema(t *testing.T) {
	// The replay schema must stay in sync with ssvc-sim's writer; this
	// is the structural half of that contract (same JSON keys).
	var rec record
	line := `{"id":9,"src":2,"dst":3,"class":"BE","lengthFlits":4,"createdAt":1,"enqueuedAt":2,"grantedAt":3,"deliveredAt":7}`
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != 9 || rec.Length != 4 || rec.Delivered != 7 {
		t.Fatalf("decoded %+v", rec)
	}
}
