// Command ssvc-replay analyses a packet log produced by
// `ssvc-sim -packet-log`: per-flow packet counts, throughput, and latency
// statistics including percentile estimates.
//
// Usage:
//
//	ssvc-replay -log packets.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"swizzleqos/internal/noc"
	"swizzleqos/internal/stats"
)

// record mirrors ssvc-sim's packet-log schema.
type record struct {
	ID        uint64 `json:"id"`
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Class     string `json:"class"`
	Length    int    `json:"lengthFlits"`
	Created   uint64 `json:"createdAt"`
	Enqueued  uint64 `json:"enqueuedAt"`
	Granted   uint64 `json:"grantedAt"`
	Delivered uint64 `json:"deliveredAt"`
}

func main() {
	var path = flag.String("log", "", "packet log written by ssvc-sim -packet-log")
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssvc-replay:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := analyse(f, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssvc-replay:", err)
		os.Exit(1)
	}
}

func parseClass(s string) (noc.Class, error) {
	switch s {
	case "BE":
		return noc.BestEffort, nil
	case "GB":
		return noc.GuaranteedBandwidth, nil
	case "GL":
		return noc.GuaranteedLatency, nil
	}
	return 0, fmt.Errorf("unknown class %q", s)
}

// analyse streams the log into a collector and renders the summary.
func analyse(r io.Reader, w io.Writer) error {
	col := stats.NewCollector(0, 0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var last uint64
	lines := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("line %d: %w", lines+1, err)
		}
		class, err := parseClass(rec.Class)
		if err != nil {
			return fmt.Errorf("line %d: %w", lines+1, err)
		}
		if rec.Delivered < rec.Granted || rec.Granted < rec.Enqueued || rec.Enqueued < rec.Created {
			return fmt.Errorf("line %d: non-monotone timestamps in record %d", lines+1, rec.ID)
		}
		col.OnDeliver(&noc.Packet{
			ID: rec.ID, Src: rec.Src, Dst: rec.Dst, Class: class, Length: rec.Length,
			CreatedAt: noc.CycleOf(rec.Created), EnqueuedAt: noc.CycleOf(rec.Enqueued),
			GrantedAt: noc.CycleOf(rec.Granted), DeliveredAt: noc.CycleOf(rec.Delivered),
		})
		if rec.Delivered > last {
			last = rec.Delivered
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 {
		return fmt.Errorf("no packet records")
	}
	col.Close(noc.CycleOf(last + 1))

	t := stats.NewTable(
		fmt.Sprintf("packet log: %d packets over %d cycles", col.TotalPackets(), col.Window()),
		"flow", "packets", "flits/cycle", "mean lat", "p50<=", "p99<=", "max lat", "max wait")
	for _, k := range col.Keys() {
		fs := col.Flow(k)
		t.AddRow(k.String(), fs.Packets,
			fmt.Sprintf("%.4f", col.Throughput(k)),
			fmt.Sprintf("%.1f", fs.MeanLatency()),
			fs.LatencyPercentileUpperBound(0.5),
			fs.LatencyPercentileUpperBound(0.99),
			fs.LatMax, fs.WaitMax)
	}
	return t.Render(w)
}
