// Command ssvc-bench regenerates every table and figure of the paper's
// evaluation section (§4) plus the repository's ablations, printing each
// as a fixed-width table.
//
// Usage:
//
//	ssvc-bench [-exp all|fig4a|fig4b|fig5|adherence|table1|table2|area|lanes|energy|glbound|glbursts|chaining|fixedpriority|static|sigbits|motivation|scale64|convergence|decoupling|gsf|compose|pvc|faults|idleskip|ctlplane]
//	           [-faults] [-quick] [-csv] [-cycles N] [-warmup N] [-seed N] [-workers N]
//	           [-shards N] [-shard-workers N] [-cpuprofile FILE] [-memprofile FILE]
//
// -faults is shorthand for the fault-injection experiment: alone it runs
// just that experiment; combined with -exp it adds faults to the
// selection.
//
// Independent sweep points within an experiment run on -workers
// goroutines (default: GOMAXPROCS); -shards additionally partitions each
// engine into conservative-PDES shards driven by -shard-workers
// goroutines (default: composed against GOMAXPROCS so the two layers
// never oversubscribe the host — see runner.Compose). The tables are
// byte-identical at any worker or shard count. -cpuprofile and
// -memprofile write pprof profiles of the whole run for `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"swizzleqos/internal/experiments"
	"swizzleqos/internal/noc"
	"swizzleqos/internal/stats"
)

func main() {
	os.Exit(benchMain(os.Args[1:], os.Stdout, os.Stderr))
}

// benchMain is the testable entry point.
func benchMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssvc-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "all", "experiment to run (comma separated), or 'all'")
		faultsOnly = fs.Bool("faults", false, "run the fault-injection experiment (adds to -exp if both are given)")
		quick      = fs.Bool("quick", false, "use short runs (lower accuracy)")
		asCSV      = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		cycles     = fs.Uint64("cycles", 0, "override measurement cycles")
		warmup     = fs.Uint64("warmup", 0, "override warmup cycles")
		seed       = fs.Uint64("seed", 1, "workload RNG seed")

		workers    = fs.Int("workers", 0, "sweep-point goroutines (0 = GOMAXPROCS, 1 = serial)")
		shards     = fs.Int("shards", 0, "engine shards per run (<= 1 = serial walk)")
		shardW     = fs.Int("shard-workers", 0, "goroutines per sharded engine (0 = compose against GOMAXPROCS)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "ssvc-bench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "ssvc-bench:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Open up front so a bad path fails before hours of simulation.
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(stderr, "ssvc-bench:", err)
			return 1
		}
		defer func() {
			defer f.Close()
			runtime.GC() // flush final allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(stderr, "ssvc-bench:", err)
			}
		}()
	}

	o := experiments.Full()
	if *quick {
		o = experiments.Quick()
	}
	if *cycles != 0 {
		o.Cycles = noc.CycleOf(*cycles)
	}
	if *warmup != 0 {
		o.Warmup = noc.CycleOf(*warmup)
	}
	o.Seed = *seed
	o.Workers = *workers
	o.Shards = *shards
	o.ShardWorkers = *shardW

	selected := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		selected[strings.TrimSpace(name)] = true
	}
	if *faultsOnly {
		expSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "exp" {
				expSet = true
			}
		})
		if !expSet {
			delete(selected, "all")
		}
		selected["faults"] = true
	}
	all := selected["all"]
	want := func(name string) bool { return all || selected[name] }
	ran := 0
	renderErr := error(nil)
	show := func(t *stats.Table) {
		ran++
		render := t.Render
		if *asCSV {
			render = t.RenderCSV
		}
		if err := render(stdout); err != nil && renderErr == nil {
			renderErr = err
		}
		fmt.Fprintln(stdout)
	}

	if want("fig4a") {
		show(experiments.Fig4(false, o).Table())
	}
	if want("fig4b") {
		show(experiments.Fig4(true, o).Table())
	}
	if want("fig5") {
		res := experiments.Fig5(o)
		show(res.Table())
		for _, p := range experiments.Fig5Policies {
			fmt.Fprintf(stdout, "  %-18s latency spread (max/min) = %.2f, 1%%-allocation latency = %.1f\n",
				p, res.LatencySpread(p), res.LowAllocationLatency(p))
		}
		fmt.Fprintln(stdout)
	}
	if want("adherence") {
		res := experiments.Adherence(20, o)
		show(res.Table())
		fmt.Fprintf(stdout, "  worst accepted/reserved across %d combos: %.3f (failures below 98%%: %d)\n\n",
			len(res.Combos), res.WorstRatio, res.Failures)
	}
	if want("table1") {
		show(experiments.Table1())
	}
	if want("table2") {
		show(experiments.Table2())
	}
	if want("area") {
		show(experiments.AreaTable())
	}
	if want("energy") {
		show(experiments.EnergyTable())
	}
	if want("lanes") {
		show(experiments.LanesTable())
	}
	if want("glbursts") {
		res := experiments.GLBursts(o)
		show(res.Table())
		fmt.Fprintf(stdout, "  all burst budgets hold: %v\n\n", res.AllHold())
	}
	if want("glbound") {
		res := experiments.GLBound(o)
		show(res.Table())
		fmt.Fprintf(stdout, "  bound holds in all scenarios: %v (tightness %.2f)\n\n", res.AllHold(), res.Tightness())
	}
	if want("chaining") {
		show(experiments.ChainingTable(experiments.AblationChaining(o)))
	}
	if want("fixedpriority") {
		show(experiments.FixedPriorityTable(experiments.AblationFixedPriority(o)))
	}
	if want("static") {
		show(experiments.StaticTable(experiments.AblationStaticSchedulers(o)))
	}
	if want("sigbits") {
		show(experiments.SigBitsTable(experiments.AblationSigBits(o)))
	}
	if want("gsf") {
		show(experiments.GSFTable(experiments.AblationGSF(o)))
	}
	if want("decoupling") {
		show(experiments.DecouplingTable(experiments.AblationDecoupling(o)))
	}
	if want("convergence") {
		show(experiments.ConvergenceTable(experiments.Convergence(o)))
	}
	if want("scale64") {
		show(experiments.Scale64(o).Table())
	}
	if want("pvc") {
		show(experiments.PVCTable(experiments.AblationPVC(o)))
	}
	if want("compose") {
		show(experiments.ComposeTable(experiments.ComposeQoS(o)))
	}
	if want("motivation") {
		show(experiments.MotivationTable(experiments.Motivation(o)))
	}
	if want("idleskip") {
		show(experiments.IdleSkipTable(experiments.IdleSkip(o)))
	}
	if want("ctlplane") {
		show(experiments.CtlPlaneTable(experiments.CtlPlane(o)))
	}
	if want("faults") {
		show(experiments.FaultsTable(experiments.Faults(o)))
		sf, su, fa, se := experiments.FaultSchedule(o)
		fmt.Fprintf(stdout, "  schedule: output 0 stalled [%d,%d), input 1 fail-stops at cycle %d, settle window ends at %d\n\n",
			sf, su, fa, se)
	}
	if renderErr != nil {
		fmt.Fprintln(stderr, "ssvc-bench:", renderErr)
		return 1
	}
	if ran == 0 {
		fmt.Fprintf(stderr, "ssvc-bench: unknown experiment %q\n", *exp)
		fs.Usage()
		return 2
	}
	return 0
}
