package main

import (
	"strings"
	"testing"
)

func TestBenchMainTable1(t *testing.T) {
	var out, errOut strings.Builder
	if code := benchMain([]string{"-exp", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "1101 K") {
		t.Fatalf("missing Table 1 total:\n%s", out.String())
	}
}

func TestBenchMainCSV(t *testing.T) {
	var out, errOut strings.Builder
	if code := benchMain([]string{"-exp", "lanes,area", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, header := range []string{"radix,channel(bits),lanes", "channel(bits),overhead(%)"} {
		if !strings.Contains(out.String(), header) {
			t.Fatalf("CSV header %q missing:\n%s", header, out.String())
		}
	}
}

func TestBenchMainQuickSimulation(t *testing.T) {
	var out, errOut strings.Builder
	if code := benchMain([]string{"-exp", "chaining", "-cycles", "5000", "-warmup", "500"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "chaining") {
		t.Fatalf("missing chaining table:\n%s", out.String())
	}
}

func TestBenchMainUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := benchMain([]string{"-exp", "nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("missing diagnostic: %s", errOut.String())
	}
}

func TestBenchMainBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := benchMain([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
