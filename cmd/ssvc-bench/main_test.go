package main

import (
	"os"
	"strings"
	"testing"
)

func TestBenchMainTable1(t *testing.T) {
	var out, errOut strings.Builder
	if code := benchMain([]string{"-exp", "table1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "1101 K") {
		t.Fatalf("missing Table 1 total:\n%s", out.String())
	}
}

func TestBenchMainCSV(t *testing.T) {
	var out, errOut strings.Builder
	if code := benchMain([]string{"-exp", "lanes,area", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, header := range []string{"radix,channel(bits),lanes", "channel(bits),overhead(%)"} {
		if !strings.Contains(out.String(), header) {
			t.Fatalf("CSV header %q missing:\n%s", header, out.String())
		}
	}
}

func TestBenchMainQuickSimulation(t *testing.T) {
	var out, errOut strings.Builder
	if code := benchMain([]string{"-exp", "chaining", "-cycles", "5000", "-warmup", "500"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "chaining") {
		t.Fatalf("missing chaining table:\n%s", out.String())
	}
}

func TestBenchMainWorkersIdenticalOutput(t *testing.T) {
	args := []string{"-exp", "chaining", "-cycles", "3000", "-warmup", "300"}
	run := func(workers string) string {
		var out, errOut strings.Builder
		a := append([]string{"-workers", workers}, args...)
		if code := benchMain(a, &out, &errOut); code != 0 {
			t.Fatalf("workers=%s: exit %d, stderr: %s", workers, code, errOut.String())
		}
		return out.String()
	}
	serial := run("1")
	if parallel := run("4"); parallel != serial {
		t.Fatalf("output differs between -workers 1 and 4:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}

func TestBenchMainProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.pb.gz"
	mem := dir + "/mem.pb.gz"
	var out, errOut strings.Builder
	args := []string{"-exp", "table1", "-cpuprofile", cpu, "-memprofile", mem}
	if code := benchMain(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestBenchMainFaultsShorthand(t *testing.T) {
	var out, errOut strings.Builder
	if code := benchMain([]string{"-faults", "-cycles", "5000", "-warmup", "500"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "Fault injection") {
		t.Fatalf("missing faults table:\n%s", got)
	}
	if !strings.Contains(got, "fail-stops at cycle") {
		t.Fatalf("missing schedule line:\n%s", got)
	}
	if strings.Contains(got, "Table 1") {
		t.Fatalf("-faults alone must not run the full suite:\n%s", got)
	}
}

func TestBenchMainFaultsCombinesWithExp(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-faults", "-exp", "table1", "-cycles", "5000", "-warmup", "500"}
	if code := benchMain(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "Fault injection") || !strings.Contains(got, "Table 1") {
		t.Fatalf("-faults -exp table1 must run both:\n%s", got)
	}
}

func TestBenchMainUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := benchMain([]string{"-exp", "nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("missing diagnostic: %s", errOut.String())
	}
}

func TestBenchMainBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := benchMain([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
