// Command ssvc-sim runs one switch simulation described by a JSON scenario
// file and prints the per-flow report.
//
// Usage:
//
//	ssvc-sim -scenario scenario.json [-print-scenario] [-packet-log out.jsonl]
//
// A scenario combines the switch configuration with its workloads:
//
//	{
//	  "radix": 8,
//	  "busWidthBits": 128,
//	  "arbitration": "SSVC",
//	  "policy": "SubtractRealClock",
//	  "warmupCycles": 10000,
//	  "measureCycles": 100000,
//	  "glRate": 0.05, "glPacketLength": 4, "glBurst": 4,
//	  "workloads": [
//	    {"src": 0, "dst": 0, "class": "GB", "rate": 0.4, "packetLength": 8,
//	     "inject": {"kind": "bernoulli", "rate": 0.4, "seed": 1}},
//	    {"src": 7, "dst": 0, "class": "GL", "rate": 0.05, "packetLength": 2,
//	     "inject": {"kind": "periodic", "interval": 5000}}
//	  ]
//	}
//
// Run with -print-scenario to emit a commented example and exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"swizzleqos"
)

// scenario is the JSON schema of one simulation.
type scenario struct {
	Radix          int     `json:"radix"`
	BusWidthBits   int     `json:"busWidthBits"`
	Arbitration    string  `json:"arbitration"`
	Policy         string  `json:"policy"`
	CounterBits    int     `json:"counterBits"`
	SigBits        int     `json:"sigBits"`
	BEBufferFlits  int     `json:"beBufferFlits"`
	GLBufferFlits  int     `json:"glBufferFlits"`
	GBBufferFlits  int     `json:"gbBufferFlits"`
	PacketChaining bool    `json:"packetChaining"`
	GLRate         float64 `json:"glRate"`
	GLPacketLength int     `json:"glPacketLength"`
	GLBurst        int     `json:"glBurst"`

	WarmupCycles  uint64 `json:"warmupCycles"`
	MeasureCycles uint64 `json:"measureCycles"`

	Workloads []workload `json:"workloads"`
}

type workload struct {
	Src          int     `json:"src"`
	Dst          int     `json:"dst"`
	Class        string  `json:"class"`
	Rate         float64 `json:"rate"`
	PacketLength int     `json:"packetLength"`
	Inject       inject  `json:"inject"`
}

type inject struct {
	Kind      string   `json:"kind"` // bernoulli, bursty, periodic, backlogged, trace
	Rate      float64  `json:"rate"`
	MeanBurst float64  `json:"meanBurst"`
	Interval  uint64   `json:"interval"`
	Offset    uint64   `json:"offset"`
	Depth     int      `json:"depth"`
	Times     []uint64 `json:"times"`
	Seed      uint64   `json:"seed"`
}

const exampleScenario = `{
  "radix": 8,
  "busWidthBits": 128,
  "arbitration": "SSVC",
  "policy": "SubtractRealClock",
  "warmupCycles": 10000,
  "measureCycles": 100000,
  "glRate": 0.05, "glPacketLength": 4, "glBurst": 4,
  "workloads": [
    {"src": 0, "dst": 0, "class": "GB", "rate": 0.40, "packetLength": 8,
     "inject": {"kind": "backlogged", "depth": 4}},
    {"src": 1, "dst": 0, "class": "GB", "rate": 0.20, "packetLength": 8,
     "inject": {"kind": "backlogged", "depth": 4}},
    {"src": 2, "dst": 0, "class": "GB", "rate": 0.10, "packetLength": 8,
     "inject": {"kind": "bursty", "rate": 0.10, "meanBurst": 4, "seed": 7}},
    {"src": 3, "dst": 0, "class": "BE", "packetLength": 8,
     "inject": {"kind": "bernoulli", "rate": 0.05, "seed": 9}},
    {"src": 7, "dst": 0, "class": "GL", "rate": 0.05, "packetLength": 2,
     "inject": {"kind": "periodic", "interval": 5000}}
  ]
}`

func main() {
	var (
		path      = flag.String("scenario", "", "path to the JSON scenario")
		printOnly = flag.Bool("print-scenario", false, "print an example scenario and exit")
		pktLog    = flag.String("packet-log", "", "write one JSON record per delivered packet to this file")
	)
	flag.Parse()
	if *printOnly {
		fmt.Println(exampleScenario)
		return
	}
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*path, *pktLog); err != nil {
		fmt.Fprintln(os.Stderr, "ssvc-sim:", err)
		os.Exit(1)
	}
}

// packetRecord is one line of the -packet-log output.
type packetRecord struct {
	ID        uint64 `json:"id"`
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Class     string `json:"class"`
	Length    int    `json:"lengthFlits"`
	Created   uint64 `json:"createdAt"`
	Enqueued  uint64 `json:"enqueuedAt"`
	Granted   uint64 `json:"grantedAt"`
	Delivered uint64 `json:"deliveredAt"`
}

func run(path, pktLog string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sc scenario
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	cfg, workloads, err := sc.build()
	if err != nil {
		return err
	}
	net, err := swizzleqos.New(cfg, workloads...)
	if err != nil {
		return err
	}
	if pktLog != "" {
		f, err := os.Create(pktLog)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		net.OnDeliver(func(p *swizzleqos.Packet) {
			_ = enc.Encode(packetRecord{
				ID: p.ID, Src: p.Src, Dst: p.Dst,
				Class: p.Class.String(), Length: p.Length,
				Created: p.CreatedAt.Uint(), Enqueued: p.EnqueuedAt.Uint(),
				Granted: p.GrantedAt.Uint(), Delivered: p.DeliveredAt.Uint(),
			})
		})
	}
	warmup, measure := sc.WarmupCycles, sc.MeasureCycles
	if measure == 0 {
		measure = 100000
	}
	net.Run(swizzleqos.CycleOf(warmup))
	net.StartMeasurement()
	net.Run(swizzleqos.CycleOf(measure))
	rep := net.Report()
	fmt.Print(rep.Table())
	fmt.Printf("total packets delivered: %d\n", rep.TotalPackets())
	return nil
}

func (sc scenario) build() (swizzleqos.Config, []swizzleqos.Workload, error) {
	if sc.Radix == 0 {
		return swizzleqos.Config{}, nil, fmt.Errorf("scenario: radix is required")
	}
	cfg := swizzleqos.DefaultConfig(sc.Radix)
	if sc.BusWidthBits != 0 {
		cfg.BusWidthBits = sc.BusWidthBits
	}
	if sc.Arbitration != "" {
		arb, err := parseArbitration(sc.Arbitration)
		if err != nil {
			return cfg, nil, err
		}
		cfg.Arbitration = arb
	}
	if sc.Policy != "" {
		pol, err := parsePolicy(sc.Policy)
		if err != nil {
			return cfg, nil, err
		}
		cfg.Policy = pol
	}
	cfg.CounterBits = sc.CounterBits
	cfg.SigBits = sc.SigBits
	if sc.BEBufferFlits != 0 {
		cfg.BEBufferFlits = sc.BEBufferFlits
	}
	if sc.GLBufferFlits != 0 {
		cfg.GLBufferFlits = sc.GLBufferFlits
	}
	if sc.GBBufferFlits != 0 {
		cfg.GBBufferFlits = sc.GBBufferFlits
	}
	cfg.PacketChaining = sc.PacketChaining
	cfg.GL = swizzleqos.GLConfig{Rate: sc.GLRate, PacketLength: sc.GLPacketLength, Burst: sc.GLBurst}

	var ws []swizzleqos.Workload
	for i, w := range sc.Workloads {
		class, err := parseClass(w.Class)
		if err != nil {
			return cfg, nil, fmt.Errorf("workload %d: %w", i, err)
		}
		inj, err := w.Inject.build()
		if err != nil {
			return cfg, nil, fmt.Errorf("workload %d: %w", i, err)
		}
		ws = append(ws, swizzleqos.Workload{
			Spec: swizzleqos.FlowSpec{
				Src: w.Src, Dst: w.Dst, Class: class,
				Rate: w.Rate, PacketLength: w.PacketLength,
			},
			Inject: inj,
		})
	}
	return cfg, ws, nil
}

func (in inject) build() (swizzleqos.Injection, error) {
	switch strings.ToLower(in.Kind) {
	case "bernoulli":
		return swizzleqos.Inject.Bernoulli(in.Rate, in.Seed), nil
	case "bursty":
		mb := in.MeanBurst
		if mb == 0 {
			mb = 4
		}
		return swizzleqos.Inject.Bursty(in.Rate, mb, in.Seed), nil
	case "periodic":
		return swizzleqos.Inject.Periodic(swizzleqos.CycleOf(in.Interval), swizzleqos.CycleOf(in.Offset)), nil
	case "backlogged":
		return swizzleqos.Inject.Backlogged(in.Depth), nil
	case "trace":
		times := make([]swizzleqos.Cycle, len(in.Times))
		for i, t := range in.Times {
			times[i] = swizzleqos.CycleOf(t)
		}
		return swizzleqos.Inject.Trace(times...), nil
	}
	return swizzleqos.Injection{}, fmt.Errorf("unknown injection kind %q", in.Kind)
}

func parseClass(s string) (swizzleqos.Class, error) {
	switch strings.ToUpper(s) {
	case "BE", "":
		return swizzleqos.BestEffort, nil
	case "GB":
		return swizzleqos.GuaranteedBandwidth, nil
	case "GL":
		return swizzleqos.GuaranteedLatency, nil
	}
	return 0, fmt.Errorf("unknown class %q (want BE, GB, or GL)", s)
}

func parseArbitration(s string) (swizzleqos.Arbitration, error) {
	switch strings.ToLower(s) {
	case "ssvc":
		return swizzleqos.SSVC, nil
	case "lrg":
		return swizzleqos.LRG, nil
	case "roundrobin", "rr":
		return swizzleqos.RoundRobin, nil
	case "originalvirtualclock", "origvc":
		return swizzleqos.OriginalVirtualClock, nil
	case "fixedpriority":
		return swizzleqos.FixedPriority, nil
	}
	return 0, fmt.Errorf("unknown arbitration %q", s)
}

func parsePolicy(s string) (swizzleqos.CounterPolicy, error) {
	switch strings.ToLower(s) {
	case "subtractrealclock", "subtract":
		return swizzleqos.SubtractRealTime, nil
	case "divideby2", "halve":
		return swizzleqos.Halve, nil
	case "reset":
		return swizzleqos.Reset, nil
	}
	return 0, fmt.Errorf("unknown counter policy %q", s)
}
