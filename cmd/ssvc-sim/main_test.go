package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swizzleqos"
)

func TestExampleScenarioParsesAndBuilds(t *testing.T) {
	var sc scenario
	if err := json.Unmarshal([]byte(exampleScenario), &sc); err != nil {
		t.Fatalf("example scenario does not parse: %v", err)
	}
	cfg, ws, err := sc.build()
	if err != nil {
		t.Fatalf("example scenario does not build: %v", err)
	}
	if cfg.Radix != 8 || len(ws) != 5 {
		t.Fatalf("radix=%d workloads=%d, want 8/5", cfg.Radix, len(ws))
	}
	if ws[4].Spec.Class != swizzleqos.GuaranteedLatency {
		t.Fatalf("last workload class %v, want GL", ws[4].Spec.Class)
	}
}

func TestRunEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(exampleScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(`{"radix": 8, "bogus": 1, "workloads": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, ""); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseClass(t *testing.T) {
	cases := map[string]swizzleqos.Class{
		"BE": swizzleqos.BestEffort,
		"":   swizzleqos.BestEffort,
		"gb": swizzleqos.GuaranteedBandwidth,
		"GL": swizzleqos.GuaranteedLatency,
	}
	for in, want := range cases {
		got, err := parseClass(in)
		if err != nil || got != want {
			t.Errorf("parseClass(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseClass("XX"); err == nil {
		t.Error("parseClass accepted XX")
	}
}

func TestParseArbitrationAndPolicy(t *testing.T) {
	if a, err := parseArbitration("origvc"); err != nil || a != swizzleqos.OriginalVirtualClock {
		t.Errorf("parseArbitration(origvc) = %v, %v", a, err)
	}
	if _, err := parseArbitration("nope"); err == nil {
		t.Error("parseArbitration accepted nope")
	}
	if p, err := parsePolicy("halve"); err != nil || p != swizzleqos.Halve {
		t.Errorf("parsePolicy(halve) = %v, %v", p, err)
	}
	if _, err := parsePolicy("nope"); err == nil {
		t.Error("parsePolicy accepted nope")
	}
}

func TestInjectBuildErrors(t *testing.T) {
	if _, err := (inject{Kind: "warp"}).build(); err == nil {
		t.Error("unknown injection kind accepted")
	}
}

func TestRunWithPacketLog(t *testing.T) {
	dir := t.TempDir()
	scenarioPath := filepath.Join(dir, "scenario.json")
	logPath := filepath.Join(dir, "packets.jsonl")
	if err := os.WriteFile(scenarioPath, []byte(exampleScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(scenarioPath, logPath); err != nil {
		t.Fatalf("run: %v", err)
	}
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 100 {
		t.Fatalf("only %d packet records", len(lines))
	}
	var rec packetRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("first record does not parse: %v", err)
	}
	if rec.Delivered < rec.Enqueued || rec.Length == 0 || rec.Class == "" {
		t.Fatalf("malformed record: %+v", rec)
	}
}
