package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzScenarioParse throws arbitrary JSON at the scenario parser and
// builder; they must reject garbage with errors, never panic.
func FuzzScenarioParse(f *testing.F) {
	f.Add(exampleScenario)
	f.Add(`{"radix": 2, "workloads": []}`)
	f.Add(`{"radix": -1}`)
	f.Add(`{"radix": 8, "workloads": [{"src": 0, "dst": 1, "class": "GB", "rate": 2.0, "packetLength": 0, "inject": {"kind": "trace", "times": [3,1]}}]}`)
	f.Fuzz(func(t *testing.T, raw string) {
		var sc scenario
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sc); err != nil {
			return
		}
		// Clamp pathological sizes so the fuzzer exercises validation,
		// not memory exhaustion.
		if sc.Radix > 128 || len(sc.Workloads) > 64 {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("build panicked on %q: %v", raw, r)
			}
		}()
		cfg, ws, err := sc.build()
		if err != nil {
			return
		}
		_ = cfg
		_ = ws
	})
}
