// Command ssvc-benchguard reruns the steady-state engine benchmarks and
// fails when their allocation counts regress past the values recorded in
// the baseline files. -baseline takes a comma-separated list; later files
// override earlier ones per benchmark, so BENCH_bitplane.json supersedes
// BENCH_baseline.json where both record the same benchmark and
// contributes the idle-regime and arbitrate-kernel benchmarks the older
// file predates, BENCH_shard.json adds the sharded cycle-loop
// benchmarks, and BENCH_ctlplane.json adds the control-plane-attached
// idle benchmark on top.
//
// Only B/op and allocs/op are guarded: they are deterministic at a
// fixed -benchtime, so the gate cannot flake the way an ns/op bound
// would on shared CI hardware. The point is to catch a change that
// quietly reintroduces per-cycle heap traffic into the engines' hot
// loops — the same invariant ssvc-lint's hotpath analyzer checks
// statically, verified here dynamically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// guarded maps each benchmark to the package that defines it.
var guarded = map[string]string{
	"BenchmarkSwitchCycleRecycled":  "./internal/switchsim/",
	"BenchmarkSwitchCycleIdle":      "./internal/switchsim/",
	"BenchmarkSwitchCycleSharded":   "./internal/switchsim/",
	"BenchmarkMeshCycleRecycled":    "./internal/mesh/",
	"BenchmarkMeshCycleSharded":     "./internal/mesh/",
	"BenchmarkComposeCycleRecycled": "./internal/compose/",
	"BenchmarkBitplaneArbitrate":    "./internal/core/",
	"BenchmarkCtlPlaneIdle":         "./internal/ctlplane/",
}

// metric is one benchmark result (or baseline entry). Only the
// allocation columns participate in the comparison.
type metric struct {
	BOp      float64 `json:"B_op"`
	AllocsOp float64 `json:"allocs_op"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json,BENCH_bitplane.json,BENCH_shard.json,BENCH_ctlplane.json", "comma-separated baseline files; later files override earlier entries")
	benchtime := flag.String("benchtime", "20000x", "go test -benchtime value (iteration counts keep allocs/op deterministic; long enough to amortise residual pool warm-up below 0.5 B/op)")
	flag.Parse()

	base := map[string]metric{}
	for _, path := range strings.Split(*baselinePath, ",") {
		layer, err := loadBaseline(strings.TrimSpace(path))
		if err != nil {
			fatal(err)
		}
		for name, m := range layer {
			base[name] = m
		}
	}
	got, err := runBenchmarks(*benchtime)
	if err != nil {
		fatal(err)
	}

	failed := 0
	checked := 0
	for name, m := range got {
		want, ok := base[name]
		if !ok {
			fmt.Printf("  %-45s B/op=%-6.0f allocs/op=%-4.0f (no baseline; informational)\n", name, m.BOp, m.AllocsOp)
			continue
		}
		checked++
		status := "ok"
		if m.AllocsOp > want.AllocsOp || m.BOp > want.BOp {
			status = fmt.Sprintf("REGRESSION (baseline B/op=%.0f allocs/op=%.0f)", want.BOp, want.AllocsOp)
			failed++
		}
		fmt.Printf("  %-45s B/op=%-6.0f allocs/op=%-4.0f %s\n", name, m.BOp, m.AllocsOp, status)
	}
	for name := range base {
		if _, ok := got[name]; !ok {
			fmt.Printf("  %-45s MISSING: baseline entry but benchmark did not run\n", name)
			failed++
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d allocation regression(s) against %s", failed, *baselinePath))
	}
	fmt.Printf("benchguard: %d benchmark(s) at or below baseline allocations\n", checked)
}

// loadBaseline flattens the "after" blocks of BENCH_baseline.json into
// full benchmark names. An "after" block is either a single metric
// (mesh, compose) or a map of sub-benchmark name to metric (switch).
func loadBaseline(path string) (map[string]metric, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Benchmarks map[string]struct {
			After json.RawMessage `json:"after"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]metric{}
	for name, b := range doc.Benchmarks {
		if _, ok := guarded[name]; !ok || len(b.After) == 0 {
			continue
		}
		// Probe the map shape first: a single metric object would also
		// "succeed" as a struct with every sub-field missing.
		var subs map[string]metric
		if err := json.Unmarshal(b.After, &subs); err == nil {
			for sub, m := range subs {
				out[name+"/"+sub] = m
			}
			continue
		}
		var single metric
		if err := json.Unmarshal(b.After, &single); err != nil {
			return nil, fmt.Errorf("%s: benchmark %s has unrecognised 'after' shape: %w", path, name, err)
		}
		out[name] = single
	}
	return out, nil
}

// runBenchmarks executes the guarded benchmarks once and parses the
// standard `-benchmem` output columns.
func runBenchmarks(benchtime string) (map[string]metric, error) {
	names := make([]string, 0, len(guarded))
	pkgs := make([]string, 0, len(guarded))
	seen := map[string]bool{}
	for name, pkg := range guarded {
		names = append(names, name)
		if !seen[pkg] {
			seen[pkg] = true
			pkgs = append(pkgs, pkg)
		}
	}
	pattern := "^(" + strings.Join(names, "|") + ")$"
	args := append([]string{"test", "-run", "^$", "-bench", pattern, "-benchmem", "-benchtime", benchtime}, pkgs...)
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test -bench failed: %v\n%s", err, out)
	}
	results := map[string]metric{}
	for _, line := range strings.Split(string(out), "\n") {
		name, m, ok := parseBenchLine(line)
		if ok {
			results[name] = m
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines in go test output:\n%s", out)
	}
	return results, nil
}

// parseBenchLine reads one `BenchmarkX/sub-N  iters  ns/op  B/op
// allocs/op  [extra metrics]` line, stripping the -GOMAXPROCS suffix.
func parseBenchLine(line string) (string, metric, bool) {
	fields := strings.Fields(line)
	if len(fields) < 7 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", metric{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var m metric
	found := 0
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			m.BOp = v
			found++
		case "allocs/op":
			m.AllocsOp = v
			found++
		}
	}
	if found != 2 {
		return "", metric{}, false
	}
	return name, m, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssvc-benchguard:", err)
	os.Exit(1)
}
