package main

import "testing"

func TestRunExhaustiveRadix4(t *testing.T) {
	if err := run(4, 6, true, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunRandomRadix8(t *testing.T) {
	if err := run(8, 16, true, 5000, 1); err != nil {
		t.Fatal(err)
	}
	if err := run(8, 8, false, 5000, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadGeometry(t *testing.T) {
	if err := run(1, 4, false, 10, 1); err == nil {
		t.Fatal("radix 1 accepted")
	}
	if err := run(64, 2, true, 10, 1); err == nil {
		t.Fatal("no GB lane left but accepted")
	}
}
