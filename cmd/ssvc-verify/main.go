// Command ssvc-verify reproduces the paper's §4.1 correctness methodology:
// it models every wire of the SSVC arbitration fabric and checks the
// winner of each arbitration against a direct priority comparison, for all
// input combinations of thermometer code vectors and valid LRG states
// (exhaustively up to the -exhaustive-radix, randomly above it).
//
// Usage:
//
//	ssvc-verify [-radix 8] [-lanes 8] [-classes] [-trials 100000]
package main

import (
	"flag"
	"fmt"
	"os"

	"swizzleqos/internal/arb"
	"swizzleqos/internal/circuit"
	"swizzleqos/internal/core"
	"swizzleqos/internal/noc"
	"swizzleqos/internal/traffic"
)

func main() {
	var (
		radix   = flag.Int("radix", 8, "switch radix")
		lanes   = flag.Int("lanes", 8, "arbitration lanes (bus width / radix)")
		classes = flag.Bool("classes", false, "reserve BE and GL lanes and include all three classes")
		trials  = flag.Int("trials", 100000, "random trials (radix > 4); exhaustive below")
		seed    = flag.Uint64("seed", 1, "RNG seed for random trials")
	)
	flag.Parse()
	if err := run(*radix, *lanes, *classes, *trials, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "ssvc-verify:", err)
		os.Exit(1)
	}
}

func run(radix, lanes int, classes bool, trials int, seed uint64) error {
	fabric, err := circuit.NewFabric(radix, lanes, classes, classes)
	if err != nil {
		return err
	}
	if radix <= 4 {
		return exhaustive(fabric, radix, classes)
	}
	return random(fabric, radix, classes, trials, seed)
}

// exhaustive sweeps every request/class/thermometer combination across
// every LRG permutation.
func exhaustive(f *circuit.Fabric, radix int, classes bool) error {
	options := []circuit.Crosspoint{{}}
	if classes {
		options = append(options,
			circuit.Crosspoint{Request: true, Class: noc.BestEffort},
			circuit.Crosspoint{Request: true, Class: noc.GuaranteedLatency})
	}
	for v := 0; v < f.GBLanes(); v++ {
		options = append(options, circuit.Crosspoint{
			Request: true,
			Class:   noc.GuaranteedBandwidth,
			Therm:   core.ThermCode(v, f.GBLanes()),
		})
	}
	perms := permutations(radix)
	points := make([]circuit.Crosspoint, radix)
	idx := make([]int, radix)
	checked := 0
	for {
		for i := range points {
			points[i] = options[idx[i]]
		}
		for _, order := range perms {
			lrg := arb.NewLRGState(radix)
			if err := lrg.SetOrder(order); err != nil {
				return err
			}
			got := f.Arbitrate(points, lrg).Winner
			want := circuit.ReferenceWinner(points, lrg)
			if got != want {
				return fmt.Errorf("divergence: points=%+v order=%v circuit=%d reference=%d",
					points, order, got, want)
			}
			checked++
		}
		k := 0
		for ; k < radix; k++ {
			idx[k]++
			if idx[k] < len(options) {
				break
			}
			idx[k] = 0
		}
		if k == radix {
			break
		}
	}
	fmt.Printf("ssvc-verify: exhaustive: %d arbitration decisions verified, all correct\n", checked)
	return nil
}

// random samples request patterns, thermometer codes, and LRG histories.
func random(f *circuit.Fabric, radix int, classes bool, trials int, seed uint64) error {
	rng := traffic.NewRNG(seed)
	points := make([]circuit.Crosspoint, radix)
	for trial := 0; trial < trials; trial++ {
		for i := range points {
			r := rng.Intn(8)
			switch {
			case r < 2:
				points[i] = circuit.Crosspoint{}
			case classes && r == 2:
				points[i] = circuit.Crosspoint{Request: true, Class: noc.BestEffort}
			case classes && r == 3:
				points[i] = circuit.Crosspoint{Request: true, Class: noc.GuaranteedLatency}
			default:
				points[i] = circuit.Crosspoint{
					Request: true,
					Class:   noc.GuaranteedBandwidth,
					Therm:   core.ThermCode(rng.Intn(f.GBLanes()), f.GBLanes()),
				}
			}
		}
		lrg := arb.NewLRGState(radix)
		for g := 0; g < 4*radix; g++ {
			lrg.Grant(rng.Intn(radix))
		}
		got := f.Arbitrate(points, lrg).Winner
		want := circuit.ReferenceWinner(points, lrg)
		if got != want {
			return fmt.Errorf("trial %d divergence: points=%+v order=%v circuit=%d reference=%d",
				trial, points, lrg.Order(), got, want)
		}
	}
	fmt.Printf("ssvc-verify: %d random arbitration decisions verified, all correct\n", trials)
	return nil
}

func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}
