// Command ssvc-lint enforces the repository's simulator invariants at
// the source level: determinism of everything feeding golden tables,
// allocation-freedom of //ssvc:hotpath functions (cross-checked against
// go build -gcflags=-m), free-list recycle discipline,
// freeze-sick-instead-of-panic error handling, counter-safety of
// unsigned arithmetic (CFG/dataflow-backed guard tracking for
// subtraction, plus narrowing, over-shift, and wrap-dead comparisons),
// and the noc.Cycle/noc.VTime time-unit discipline. See
// internal/analysis and the "Invariants" section of DESIGN.md.
//
// Usage:
//
//	ssvc-lint [-root dir] [-allow file] [-strict] [-json] [packages]
//
// The package argument is accepted for familiarity (`ssvc-lint ./...`)
// but the tool always analyzes the rule-defined package sets of the
// enclosing module. It prints one `file:line: [analyzer] message` per
// finding and exits 1 if any survive the allowlist. -json switches the
// findings stream to a JSON array of {file,line,analyzer,message}
// objects (exit codes unchanged) for editor and CI integration; the
// plain format is matched by .github/problem-matchers/ssvc-lint.json.
// Allowlist entries that suppressed nothing are warnings by default;
// -strict (the CI mode) makes them failures, so lint.allow cannot rot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"swizzleqos/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ssvc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
	allowPath := fs.String("allow", "", "allowlist file (default: <root>/lint.allow)")
	strict := fs.Bool("strict", false, "treat unused allowlist entries as failures")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *root == "" {
		r, err := findRoot()
		if err != nil {
			fmt.Fprintln(stderr, "ssvc-lint:", err)
			return 2
		}
		*root = r
	}
	if *allowPath == "" {
		*allowPath = filepath.Join(*root, "lint.allow")
	}
	allow, err := analysis.ParseAllowlistFile(*allowPath)
	if err != nil {
		fmt.Fprintln(stderr, "ssvc-lint:", err)
		return 2
	}
	diags, err := analysis.RunAll(*root, allow)
	if err != nil {
		fmt.Fprintln(stderr, "ssvc-lint:", err)
		return 2
	}
	unused := allow.Unused()
	for _, e := range unused {
		kind := "warning"
		if *strict {
			kind = "error"
		}
		loc := e.File
		if e.Line > 0 {
			loc = fmt.Sprintf("%s:%d", e.File, e.Line)
		}
		fmt.Fprintf(stderr, "ssvc-lint: %s: unused allowlist entry: %s %s\n", kind, e.Analyzer, loc)
	}
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "ssvc-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ssvc-lint: %d invariant violation(s)\n", len(diags))
		return 1
	}
	if *strict && len(unused) > 0 {
		fmt.Fprintf(stderr, "ssvc-lint: %d stale allowlist entr(y/ies) under -strict\n", len(unused))
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable shape of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the findings as a single indented JSON array. An
// empty run prints `[]` so consumers never special-case the clean exit.
func writeJSON(w *os.File, diags []analysis.Diagnostic) error {
	out := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonFinding{File: d.File, Line: d.Line, Analyzer: d.Analyzer, Message: d.Message})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// findRoot walks upward from the working directory to the nearest
// go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
