package swizzleqos

import (
	"fmt"

	"swizzleqos/internal/alloc"
	"swizzleqos/internal/arb"
	"swizzleqos/internal/core"
	"swizzleqos/internal/noc"
	"swizzleqos/internal/stats"
	"swizzleqos/internal/switchsim"
	"swizzleqos/internal/traffic"
)

// PlanRequirements collects a system's flow contracts for design-time
// planning: guaranteed-bandwidth reservations, guaranteed-latency
// contracts with per-flow latency bounds and burst sizes, and the switch
// geometry. See the alloc package for field documentation.
type PlanRequirements = alloc.Requirements

// GLContract is a guaranteed-latency flow's requirement: packets granted
// within LatencyBound cycles even when BurstPackets arrive at once.
type GLContract = alloc.GLRequirement

// SwitchPlan is the admission-checked programming for every output
// channel: Vticks (with hardware-register granularity), the GL class
// reservation, policing burst, and buffer sizing, plus Eq. 1's worst-case
// GL wait per output.
type SwitchPlan = alloc.Plan

// Plan admission-checks the requirements against the §3.3 budget rule and
// the lane/counter hardware limits, and returns the switch programming.
func Plan(req PlanRequirements) (*SwitchPlan, error) {
	return alloc.Build(req)
}

// NewPlanned builds a Network whose per-output SSVC arbiters are
// programmed directly from a SwitchPlan, with input buffers sized from
// the plan's GL requirements. Workload specs are validated against the
// plan's radix; their reservations should be the ones the plan was built
// from.
func NewPlanned(plan *SwitchPlan, workloads ...Workload) (*Network, error) {
	if plan == nil {
		return nil, fmt.Errorf("swizzleqos: nil plan")
	}
	if len(workloads) == 0 {
		return nil, fmt.Errorf("swizzleqos: at least one workload is required")
	}
	glBuf := 16
	for _, op := range plan.Outputs {
		if op.GLBufferFlits > glBuf {
			glBuf = op.GLBufferFlits
		}
	}
	sw, err := switchsim.New(switchsim.Config{
		Radix:         plan.Radix,
		BEBufferFlits: 16,
		GLBufferFlits: glBuf,
		GBBufferFlits: 16,
	}, func(out int) arb.Arbiter {
		return core.NewSSVC(plan.SSVCConfig(out))
	})
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg: Config{
			Radix:         plan.Radix,
			Arbitration:   SSVC,
			Policy:        plan.Policy,
			CounterBits:   plan.CounterBits,
			SigBits:       plan.SigBits,
			BEBufferFlits: 16,
			GLBufferFlits: glBuf,
			GBBufferFlits: 16,
		},
		sw: sw,
	}
	for _, w := range workloads {
		if err := w.Spec.Validate(plan.Radix); err != nil {
			return nil, err
		}
		gen, err := n.generator(w)
		if err != nil {
			return nil, err
		}
		if err := sw.AddFlow(traffic.Flow{Spec: w.Spec, Gen: gen}); err != nil {
			return nil, err
		}
	}
	sw.OnDeliver(func(p *noc.Packet) {
		if n.col != nil {
			n.col.OnDeliver(p)
		}
		if n.onDeliver != nil {
			n.onDeliver(p)
		}
	})
	return n, nil
}

// PlanTable renders a plan's per-output programming as a table.
func PlanTable(plan *SwitchPlan) string {
	t := stats.NewTable(
		fmt.Sprintf("switch plan: radix %d, %d lanes (%d GB levels), %d+%d-bit counters, %v policy",
			plan.Radix, plan.Lanes.Lanes, plan.Lanes.GBLanes, plan.SigBits,
			plan.CounterBits-plan.SigBits, plan.Policy),
		"output", "GB reserved", "GL reserved", "GL burst(pkts)", "GL buffer(flits)", "tau_GL(cycles)", "vtick granularity")
	for out := 0; out < plan.Radix; out++ {
		op, ok := plan.Outputs[out]
		if !ok {
			continue
		}
		t.AddRow(out, fmt.Sprintf("%.3f", op.GBReserved), fmt.Sprintf("%.3f", op.GLReserved),
			op.GLBurst, op.GLBufferFlits, fmt.Sprintf("%.0f", op.WorstGLWait), op.Granularity)
	}
	return t.String()
}
