// Latencyfairness: the bandwidth/latency coupling of Virtual Clock and
// how SSVC's finite-counter policies break it (the paper's Figure 5 in
// miniature).
//
// Eight congested flows reserve from 1% to 40% of one output channel. The
// same scenario runs under the original Virtual Clock algorithm and under
// SSVC with each counter policy; the example prints mean network latency
// per flow so the coupling (latency ~ 1/rate) and its progressive removal
// are visible side by side.
package main

import (
	"fmt"
	"log"

	"swizzleqos"
)

var allocations = []float64{0.01, 0.02, 0.04, 0.05, 0.08, 0.10, 0.15, 0.40}

type variant struct {
	name        string
	arbitration swizzleqos.Arbitration
	policy      swizzleqos.CounterPolicy
}

func main() {
	variants := []variant{
		{"OriginalVC", swizzleqos.OriginalVirtualClock, swizzleqos.SubtractRealTime},
		{"SSVC/Subtract", swizzleqos.SSVC, swizzleqos.SubtractRealTime},
		{"SSVC/DivideBy2", swizzleqos.SSVC, swizzleqos.Halve},
		{"SSVC/Reset", swizzleqos.SSVC, swizzleqos.Reset},
	}
	results := make(map[string][]float64)
	for _, v := range variants {
		results[v.name] = run(v)
	}

	fmt.Printf("%-12s", "allocation")
	for _, v := range variants {
		fmt.Printf("%16s", v.name)
	}
	fmt.Println()
	for i, a := range allocations {
		fmt.Printf("%10.0f%%", a*100)
		for _, v := range variants {
			fmt.Printf("%16.1f", results[v.name][i])
		}
		fmt.Println()
	}
	fmt.Println("\nmean network latency in cycles; all flows congested.")
	fmt.Println("Original Virtual Clock couples latency to 1/rate; the Reset policy is flattest.")
}

func run(v variant) []float64 {
	cfg := swizzleqos.DefaultConfig(8)
	cfg.Arbitration = v.arbitration
	cfg.Policy = v.policy
	cfg.GL = swizzleqos.GLConfig{} // GB only, as in Figure 5
	// A deliberately small counter: low-rate flows saturate it within a
	// grant or two, which is what lets the Halve/Reset policies keep the
	// live thermometer codes compressed (see EXPERIMENTS.md).
	cfg.CounterBits, cfg.SigBits = 9, 3

	var ws []swizzleqos.Workload
	for i, a := range allocations {
		ws = append(ws, swizzleqos.Workload{
			Spec: swizzleqos.FlowSpec{
				Src: i, Dst: 0,
				Class:        swizzleqos.GuaranteedBandwidth,
				Rate:         a,
				PacketLength: 8,
			},
			Inject: swizzleqos.Inject.Backlogged(4),
		})
	}
	net, err := swizzleqos.New(cfg, ws...)
	if err != nil {
		log.Fatal(err)
	}
	net.Run(20_000)
	net.StartMeasurement()
	net.Run(200_000)
	rep := net.Report()

	out := make([]float64, len(allocations))
	for i := range allocations {
		f := rep.Flow(swizzleqos.FlowKey{Src: i, Dst: 0, Class: swizzleqos.GuaranteedBandwidth})
		if f != nil {
			out[i] = f.MeanNetworkLatency()
		}
	}
	return out
}
