// Planner: design-time admission control and switch programming.
//
// An SoC integrator writes down the flows' contracts — bandwidth
// reservations for the streaming engines, latency bounds and burst sizes
// for the interrupt sources — and the planner either rejects the set as
// infeasible (§3.3 budget rule, lane limits, counter widths) or emits the
// per-output SSVC programming: Vticks (with hardware-register
// granularity), the guaranteed-latency reservation, policing burst, and
// buffer sizing. The example then runs the planned switch and verifies
// the contracts hold.
package main

import (
	"fmt"
	"log"

	"swizzleqos"
)

func main() {
	req := swizzleqos.PlanRequirements{
		Radix:        16,
		BusWidthBits: 256,
		GB: []swizzleqos.FlowSpec{
			// A DMA engine with a large reservation and a low-rate
			// telemetry flow whose Vtick (8/0.01 = 800 cycles) will not
			// fit an 8-bit register at cycle granularity: the planner
			// coarsens the tick and reports it.
			{Src: 0, Dst: 15, Class: swizzleqos.GuaranteedBandwidth, Rate: 0.45, PacketLength: 8},
			{Src: 1, Dst: 15, Class: swizzleqos.GuaranteedBandwidth, Rate: 0.20, PacketLength: 8},
			{Src: 2, Dst: 15, Class: swizzleqos.GuaranteedBandwidth, Rate: 0.01, PacketLength: 8},
		},
		GL: []swizzleqos.GLContract{
			{Src: 8, Dst: 15, PacketLength: 2, LatencyBound: 120, BurstPackets: 2},
			{Src: 9, Dst: 15, PacketLength: 2, LatencyBound: 240, BurstPackets: 4},
		},
	}

	plan, err := swizzleqos.Plan(req)
	if err != nil {
		log.Fatal("plan rejected: ", err)
	}
	fmt.Print(swizzleqos.PlanTable(plan))
	for _, w := range plan.Warnings {
		fmt.Println("warning:", w)
	}

	// An infeasible request is rejected up front, not at runtime.
	bad := req
	bad.GB = append(bad.GB, swizzleqos.FlowSpec{
		Src: 3, Dst: 15, Class: swizzleqos.GuaranteedBandwidth, Rate: 0.40, PacketLength: 8,
	})
	if _, err := swizzleqos.Plan(bad); err != nil {
		fmt.Println("\ninfeasible variant correctly rejected:")
		fmt.Println("  ", err)
	}

	// Run the planned switch with saturating demand and check contracts.
	var ws []swizzleqos.Workload
	for _, s := range req.GB {
		ws = append(ws, swizzleqos.Workload{Spec: s, Inject: swizzleqos.Inject.Backlogged(4)})
	}
	for _, g := range req.GL {
		ws = append(ws, swizzleqos.Workload{
			Spec: swizzleqos.FlowSpec{Src: g.Src, Dst: g.Dst,
				Class: swizzleqos.GuaranteedLatency, Rate: 0.05, PacketLength: g.PacketLength},
			Inject: swizzleqos.Inject.Periodic(4000, swizzleqos.CycleOf(uint64(1000*g.Src))),
		})
	}
	net, err := swizzleqos.NewPlanned(plan, ws...)
	if err != nil {
		log.Fatal(err)
	}
	var worstGLWait swizzleqos.Cycle
	net.OnDeliver(func(p *swizzleqos.Packet) {
		if p.Class == swizzleqos.GuaranteedLatency {
			if w := p.WaitingTime(); w > worstGLWait {
				worstGLWait = w
			}
		}
	})
	net.Run(10_000)
	net.StartMeasurement()
	net.Run(100_000)
	rep := net.Report()

	fmt.Println("\ncontract verification (saturated demand):")
	for _, s := range req.GB {
		got := rep.Throughput(swizzleqos.FlowKey{Src: s.Src, Dst: s.Dst, Class: s.Class})
		status := "ok"
		if got < s.Rate*0.98 {
			status = "VIOLATED"
		}
		fmt.Printf("  GB %2d->%2d reserved %.3f accepted %.3f  %s\n", s.Src, s.Dst, s.Rate, got, status)
	}
	tau := plan.Outputs[15].WorstGLWait
	status := "ok"
	if float64(worstGLWait.Uint()) > tau {
		status = "VIOLATED"
	}
	fmt.Printf("  GL worst wait %d cycles vs tau_GL %.0f  %s\n", worstGLWait, tau, status)
}
