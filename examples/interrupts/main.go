// Interrupts: time-critical messages in the guaranteed-latency class.
//
// Four inputs flood an output with guaranteed-bandwidth traffic while two
// other inputs deliver interrupts through the GL class. The example
// computes the paper's analytic worst-case waiting time (Eq. 1) and the
// admissible burst budgets (Eqs. 2-3), then measures actual GL waiting
// times and checks them against the bound.
package main

import (
	"fmt"
	"log"

	"swizzleqos"
)

func main() {
	const (
		out        = 0
		glLen      = 4  // interrupt payload, flits
		glBufFlits = 16 // GL buffer depth b
		gbLen      = 8
		nGL        = 2
	)

	// Analytic bound first: lmax covers the longest packet in the
	// network (a GB packet), lmin is the shortest GL packet.
	params := swizzleqos.GLBoundParams{
		LMax:        gbLen,
		LMin:        glLen,
		NGL:         nGL,
		BufferFlits: glBufFlits,
	}
	fmt.Printf("Eq. 1: tau_GL = lmax + NGL*(b + b/lmin) = %.0f cycles\n", params.MaxWait())

	budgets, err := swizzleqos.GLBurstSizes(gbLen, []float64{100, 250})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Eqs. 2-3: admissible bursts for per-flow latency constraints:")
	for _, b := range budgets {
		fmt.Printf("  constraint %4.0f cycles -> at most %.1f packets per burst\n", b.Latency, b.MaxPackets)
	}

	// Now measure. GL interrupts arrive in synchronized bursts that
	// fill both GL buffers — the adversarial case of the bound.
	cfg := swizzleqos.DefaultConfig(8)
	cfg.GLBufferFlits = glBufFlits
	cfg.GL = swizzleqos.GLConfig{Rate: 0.05, PacketLength: glLen, Burst: nGL * glBufFlits / glLen}

	var ws []swizzleqos.Workload
	for i := 0; i < 4; i++ {
		ws = append(ws, swizzleqos.Workload{
			Spec: swizzleqos.FlowSpec{
				Src: i, Dst: out,
				Class:        swizzleqos.GuaranteedBandwidth,
				Rate:         0.15,
				PacketLength: gbLen,
			},
			Inject: swizzleqos.Inject.Backlogged(4),
		})
	}
	var burst []swizzleqos.Cycle
	for t := swizzleqos.CycleOf(10_000); t < 200_000; t += 10_000 {
		for k := 0; k < glBufFlits/glLen; k++ {
			burst = append(burst, t)
		}
	}
	for i := 0; i < nGL; i++ {
		ws = append(ws, swizzleqos.Workload{
			Spec: swizzleqos.FlowSpec{
				Src: 6 + i, Dst: out,
				Class:        swizzleqos.GuaranteedLatency,
				Rate:         0.05,
				PacketLength: glLen,
			},
			Inject: swizzleqos.Injection{Kind: swizzleqos.InjectTrace, Times: burst},
		})
	}

	net, err := swizzleqos.New(cfg, ws...)
	if err != nil {
		log.Fatal(err)
	}
	var worst swizzleqos.Cycle
	var count int
	net.OnDeliver(func(p *swizzleqos.Packet) {
		if p.Class != swizzleqos.GuaranteedLatency {
			return
		}
		count++
		if w := p.WaitingTime(); w > worst {
			worst = w
		}
	})
	net.Run(210_000)

	fmt.Printf("\nmeasured: %d GL packets, worst waiting time %d cycles\n", count, worst)
	if float64(worst.Uint()) <= params.MaxWait() {
		fmt.Println("bound holds: measured worst case is within tau_GL")
	} else {
		fmt.Println("BOUND VIOLATED — this should never happen")
	}
}
