// Basestation: the paper's motivating SoC — a base-station-like system
// where accelerators with hard bandwidth requirements, best-effort cores,
// and a DSP share one memory controller port through the switch.
//
// The example runs the same workload twice — once on a plain LRG switch
// (no QoS) and once with SSVC — and shows that without QoS the radio
// accelerator misses its 40% bandwidth requirement as soon as the
// best-effort cores get busy, while SSVC holds every reservation.
package main

import (
	"fmt"
	"log"

	"swizzleqos"
)

const memPort = 7 // the memory controller's switch port

func workloads() []swizzleqos.Workload {
	var ws []swizzleqos.Workload
	// Radio DSP: hard 40% bandwidth requirement, streaming writes.
	ws = append(ws, swizzleqos.Workload{
		Spec: swizzleqos.FlowSpec{
			Src: 0, Dst: memPort,
			Class:        swizzleqos.GuaranteedBandwidth,
			Rate:         0.40,
			PacketLength: 8,
		},
		Inject: swizzleqos.Inject.Backlogged(4),
	})
	// Video codec: 20%, bursty frame traffic.
	ws = append(ws, swizzleqos.Workload{
		Spec: swizzleqos.FlowSpec{
			Src: 1, Dst: memPort,
			Class:        swizzleqos.GuaranteedBandwidth,
			Rate:         0.20,
			PacketLength: 8,
		},
		Inject: swizzleqos.Inject.Bursty(0.20, 6, 11),
	})
	// Four application cores: best effort, greedy.
	for core := 2; core < 6; core++ {
		ws = append(ws, swizzleqos.Workload{
			Spec: swizzleqos.FlowSpec{
				Src: core, Dst: memPort,
				Class:        swizzleqos.BestEffort,
				PacketLength: 8,
			},
			Inject: swizzleqos.Inject.Backlogged(4),
		})
	}
	// Watchdog: rare time-critical pings in the GL class.
	ws = append(ws, swizzleqos.Workload{
		Spec: swizzleqos.FlowSpec{
			Src: 6, Dst: memPort,
			Class:        swizzleqos.GuaranteedLatency,
			Rate:         0.05,
			PacketLength: 2,
		},
		Inject: swizzleqos.Inject.Periodic(10_000, 5_000),
	})
	return ws
}

func run(arbitration swizzleqos.Arbitration) *swizzleqos.Report {
	cfg := swizzleqos.DefaultConfig(8)
	cfg.Arbitration = arbitration
	net, err := swizzleqos.New(cfg, workloads()...)
	if err != nil {
		log.Fatal(err)
	}
	net.Run(10_000)
	net.StartMeasurement()
	net.Run(200_000)
	return net.Report()
}

func main() {
	for _, arbitration := range []swizzleqos.Arbitration{swizzleqos.LRG, swizzleqos.SSVC} {
		rep := run(arbitration)
		fmt.Printf("=== %v arbitration ===\n", arbitration)
		fmt.Print(rep.Table())

		radio := rep.Throughput(swizzleqos.FlowKey{Src: 0, Dst: memPort, Class: swizzleqos.GuaranteedBandwidth})
		verdict := "MISSED"
		if radio >= 0.40*0.98 {
			verdict = "met"
		}
		fmt.Printf("radio DSP requirement (0.40 flits/cycle): %.3f -> %s\n\n", radio, verdict)
	}
	fmt.Println("Note: under SSVC the best-effort cores vanish from the table — BE has")
	fmt.Println("strict lowest priority, so backlogged GB flows absorb the whole channel.")
	fmt.Println("The codec's huge LRG-run latency is source queueing: without QoS it")
	fmt.Println("only receives an equal share (0.148) of the channel, below its 0.20 offer.")
}
