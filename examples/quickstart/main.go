// Quickstart: build an 8-port QoS switch, reserve bandwidth for two flows
// sharing an output, drive them with random traffic, and print the
// per-flow report.
package main

import (
	"fmt"
	"log"

	"swizzleqos"
)

func main() {
	cfg := swizzleqos.DefaultConfig(8)

	// Two cores send to the memory controller on port 7. Core 0 reserves
	// 25% of the channel, core 1 reserves 10%; both offer 20% so core 1
	// is over budget.
	net, err := swizzleqos.New(cfg,
		swizzleqos.Workload{
			Spec: swizzleqos.FlowSpec{
				Src: 0, Dst: 7,
				Class:        swizzleqos.GuaranteedBandwidth,
				Rate:         0.25,
				PacketLength: 8,
			},
			Inject: swizzleqos.Inject.Bernoulli(0.20, 1),
		},
		swizzleqos.Workload{
			Spec: swizzleqos.FlowSpec{
				Src: 1, Dst: 7,
				Class:        swizzleqos.GuaranteedBandwidth,
				Rate:         0.10,
				PacketLength: 8,
			},
			Inject: swizzleqos.Inject.Bernoulli(0.20, 2),
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	net.Run(10_000) // warm up
	net.StartMeasurement()
	net.Run(100_000)

	report := net.Report()
	fmt.Print(report.Table())
	fmt.Printf("\noutput 7 total: %.3f flits/cycle\n", report.OutputThroughput(7))
}
