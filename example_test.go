package swizzleqos_test

import (
	"fmt"

	"swizzleqos"
)

// ExampleNew builds a small QoS switch, reserves bandwidth for two flows
// into one output, saturates them, and shows that each receives its
// reservation (the channel's effective capacity with 8-flit packets is
// 8/9, so the leftover beyond the 0.60 reserved is redistributed).
func ExampleNew() {
	cfg := swizzleqos.DefaultConfig(8)
	cfg.GL = swizzleqos.GLConfig{} // guaranteed-bandwidth only

	net, err := swizzleqos.New(cfg,
		swizzleqos.Workload{
			Spec: swizzleqos.FlowSpec{Src: 0, Dst: 7,
				Class: swizzleqos.GuaranteedBandwidth, Rate: 0.40, PacketLength: 8},
			Inject: swizzleqos.Inject.Backlogged(4),
		},
		swizzleqos.Workload{
			Spec: swizzleqos.FlowSpec{Src: 1, Dst: 7,
				Class: swizzleqos.GuaranteedBandwidth, Rate: 0.20, PacketLength: 8},
			Inject: swizzleqos.Inject.Backlogged(4),
		},
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	net.Run(10_000)
	net.StartMeasurement()
	net.Run(90_000)
	rep := net.Report()

	for _, src := range []int{0, 1} {
		k := swizzleqos.FlowKey{Src: src, Dst: 7, Class: swizzleqos.GuaranteedBandwidth}
		fmt.Printf("flow %d reserved %.2f accepted %.2f\n",
			src, []float64{0.40, 0.20}[src], rep.Throughput(k))
	}
	// Both reservations are covered; the remaining capacity is shared
	// by the LRG tie-break, landing both flows at an equal 0.44.
	// Output:
	// flow 0 reserved 0.40 accepted 0.44
	// flow 1 reserved 0.20 accepted 0.44
}

// ExampleGLBurstSizes evaluates the paper's burst budgets (Eqs. 2-3) for
// two guaranteed-latency flows sharing an output.
func ExampleGLBurstSizes() {
	budgets, err := swizzleqos.GLBurstSizes(8, []float64{120, 240})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, b := range budgets {
		fmt.Printf("bound %3.0f cycles: at most %.1f packets per burst\n", b.Latency, b.MaxPackets)
	}
	// Output:
	// bound 120 cycles: at most 6.2 packets per burst
	// bound 240 cycles: at most 19.6 packets per burst
}

// ExampleTable1Storage reproduces the bottom line of the paper's Table 1.
func ExampleTable1Storage() {
	s := swizzleqos.Table1Storage()
	fmt.Printf("64x64 switch, 512-bit buses: %.0f KB total SSVC storage\n", s.TotalBytes()/1024)
	// Output:
	// 64x64 switch, 512-bit buses: 1101 KB total SSVC storage
}
