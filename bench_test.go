// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4). Each benchmark runs the corresponding experiment and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full harness and prints the reproduced numbers.
// The full-length sweeps live behind `ssvc-bench`; the benchmarks use
// shortened windows sized for a benchmarking loop.
package swizzleqos_test

import (
	"testing"

	"swizzleqos/internal/experiments"
)

func benchOptions() experiments.Options {
	return experiments.Options{Cycles: 20000, Warmup: 2000, Seed: 1}
}

// BenchmarkFig4aNoQoS regenerates Figure 4(a): the LRG baseline's equal
// bandwidth split under congestion. Reported metrics: the saturated
// output throughput (paper: 0.89 flits/cycle) and the largest flow's
// share (paper: ~1/8 of the channel despite its 40% demand).
func BenchmarkFig4aNoQoS(b *testing.B) {
	var res experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig4(false, benchOptions())
	}
	sat := res.Saturated()
	b.ReportMetric(sat.Total, "satThroughput")
	b.ReportMetric(sat.PerFlow[0], "flow40pctShare")
}

// BenchmarkFig4bSSVC regenerates Figure 4(b): SSVC differentiates the
// saturated flows by their reservations.
func BenchmarkFig4bSSVC(b *testing.B) {
	var res experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig4(true, benchOptions())
	}
	sat := res.Saturated()
	b.ReportMetric(sat.Total, "satThroughput")
	b.ReportMetric(sat.PerFlow[0], "flow40pctShare")
	b.ReportMetric(sat.PerFlow[4], "flow5pctShare")
}

// BenchmarkFig5LatencyFairness regenerates Figure 5: mean latency vs
// allocation under the original Virtual Clock and the three SSVC counter
// policies. Reported metrics: the 1%-allocation latency under the
// original algorithm and under the Reset policy, and Reset's max/min
// latency spread (paper: least variance of all policies).
func BenchmarkFig5LatencyFairness(b *testing.B) {
	var res experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig5(benchOptions())
	}
	b.ReportMetric(res.LowAllocationLatency("OriginalVC"), "origVC1pctLat")
	b.ReportMetric(res.LowAllocationLatency("SubtractRealClock"), "subtract1pctLat")
	b.ReportMetric(res.LowAllocationLatency("Reset"), "reset1pctLat")
	b.ReportMetric(res.LatencySpread("Reset"), "resetSpread")
}

// BenchmarkRateAdherence regenerates the §4.2 check across random
// reservation mixes; the metric is the worst accepted/reserved ratio
// (paper: within 2% of the reservation, i.e. >= 0.98).
func BenchmarkRateAdherence(b *testing.B) {
	var res experiments.AdherenceResult
	for i := 0; i < b.N; i++ {
		res = experiments.Adherence(5, benchOptions())
	}
	b.ReportMetric(res.WorstRatio, "worstAcceptedOverReserved")
}

// BenchmarkTable1Storage regenerates Table 1; the metric is the total
// switch storage in KB (paper: ~1,101 KB).
func BenchmarkTable1Storage(b *testing.B) {
	var kb float64
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		if t.NumRows() == 0 {
			b.Fatal("empty table")
		}
		kb = experiments.Table1StorageKB()
	}
	b.ReportMetric(kb, "totalKB")
}

// BenchmarkTable2Frequency regenerates Table 2; the metric is the worst
// SSVC slowdown in percent (paper: 8.4% at 8x8/256-bit).
func BenchmarkTable2Frequency(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		t := experiments.Table2()
		if t.NumRows() == 0 {
			b.Fatal("empty table")
		}
		worst = experiments.WorstSlowdownPercent()
	}
	b.ReportMetric(worst, "worstSlowdownPct")
}

// BenchmarkGLBound regenerates the §3.4 guaranteed-latency validation;
// metrics: whether the bound held everywhere (1 = yes) and how close the
// adversarial worst case comes to it.
func BenchmarkGLBound(b *testing.B) {
	var res experiments.GLBoundResult
	for i := 0; i < b.N; i++ {
		res = experiments.GLBound(benchOptions())
	}
	holds := 0.0
	if res.AllHold() {
		holds = 1.0
	}
	b.ReportMetric(holds, "boundHolds")
	b.ReportMetric(res.Tightness(), "tightness")
}

// BenchmarkAblationPacketChaining measures the arbitration-cycle loss and
// its recovery via packet chaining (§4.2, [10]) for 2-flit packets.
func BenchmarkAblationPacketChaining(b *testing.B) {
	var out []experiments.ChainingOutcome
	for i := 0; i < b.N; i++ {
		out = experiments.AblationChaining(benchOptions())
	}
	for _, oc := range out {
		if oc.PacketLen == 2 {
			b.ReportMetric(oc.Plain, "plain2flit")
			b.ReportMetric(oc.Chained, "chained2flit")
		}
	}
}

// BenchmarkAblationFixedPriority contrasts the prior fixed-priority QoS
// [14] with SSVC; the metric is the victim flow's accepted throughput
// under each scheme (reservation: 0.30).
func BenchmarkAblationFixedPriority(b *testing.B) {
	var out []experiments.FixedPriorityOutcome
	for i := 0; i < b.N; i++ {
		out = experiments.AblationFixedPriority(benchOptions())
	}
	b.ReportMetric(out[0].VictimAccepted, "victimFixedPrio")
	b.ReportMetric(out[1].VictimAccepted, "victimSSVC")
}

// BenchmarkAblationStaticSchedulers measures leftover-bandwidth
// redistribution (§2.2): channel utilisation when half the reserved flows
// idle, under fixed WRR vs SSVC.
func BenchmarkAblationStaticSchedulers(b *testing.B) {
	var out []experiments.StaticOutcome
	for i := 0; i < b.N; i++ {
		out = experiments.AblationStaticSchedulers(benchOptions())
	}
	for _, oc := range out {
		switch oc.Scheme {
		case "WRR(fixed)":
			b.ReportMetric(oc.Utilisation, "utilWRRfixed")
		case "SSVC":
			b.ReportMetric(oc.Utilisation, "utilSSVC")
		}
	}
}

// BenchmarkMotivationSingleStageVsMesh quantifies the §1-§2.1 motivation:
// a 30%-reserving flow crossing a 16-node system, on a single-stage SSVC
// switch vs a 4x4 mesh. Metrics: the victim's accepted throughput on each
// fabric and the worst flow's accepted/reserved ratio under the mesh's
// best static weighting.
func BenchmarkMotivationSingleStageVsMesh(b *testing.B) {
	var out []experiments.MotivationOutcome
	for i := 0; i < b.N; i++ {
		out = experiments.Motivation(benchOptions())
	}
	for _, oc := range out {
		switch oc.System {
		case "SwizzleSwitch+SSVC":
			b.ReportMetric(oc.VictimThroughput, "victimSSVC")
		case "Mesh+LRG":
			b.ReportMetric(oc.VictimThroughput, "victimMeshLRG")
		case "Mesh+WRR(static ports)":
			b.ReportMetric(oc.WorstRatio, "worstRatioMeshWRR")
		}
	}
}

// BenchmarkAblationSigBits sweeps the thermometer resolution (§4.4); the
// metric is the worst accepted/reserved ratio at 1 and 6 significant
// bits.
func BenchmarkAblationSigBits(b *testing.B) {
	var out []experiments.SigBitsOutcome
	for i := 0; i < b.N; i++ {
		out = experiments.AblationSigBits(benchOptions())
	}
	b.ReportMetric(out[0].WorstRatio, "worstRatio1bit")
	b.ReportMetric(out[len(out)-1].WorstRatio, "worstRatio6bit")
}

// BenchmarkScale64 exercises the headline scalability claim: a full
// radix-64 switch with 31 differentiated hotspot reservations plus
// uniform background. Metrics: the worst hotspot accepted/reserved ratio
// and the aggregate background throughput.
func BenchmarkScale64(b *testing.B) {
	var res experiments.ScaleResult
	for i := 0; i < b.N; i++ {
		res = experiments.Scale64(benchOptions())
	}
	b.ReportMetric(res.WorstRatio, "worstHotspotRatio")
	b.ReportMetric(res.BackgroundTotal, "backgroundFlitsPerCycle")
}

// BenchmarkGLBursts validates the burst-size recursion (Eqs. 2-3, with
// the corrected N_GL-n+1 denominator) by simulation; metrics: whether
// every constraint held and how close the loosest flow came to its bound.
func BenchmarkGLBursts(b *testing.B) {
	var res experiments.GLBurstsResult
	for i := 0; i < b.N; i++ {
		res = experiments.GLBursts(benchOptions())
	}
	holds := 0.0
	if res.AllHold() {
		holds = 1.0
	}
	b.ReportMetric(holds, "budgetsHold")
	last := res.Outcomes[len(res.Outcomes)-1]
	b.ReportMetric(float64(last.MeasuredWait)/last.Constraint, "loosestTightness")
}

// BenchmarkConvergence measures the transient after a 40%-reserved flow
// wakes into a slack-filled channel. Metrics: windows (500 cycles) to
// reach 95% of the reservation under SSVC, and the channel utilisation
// while the reservation slept.
func BenchmarkConvergence(b *testing.B) {
	var out []experiments.ConvergenceOutcome
	for i := 0; i < b.N; i++ {
		out = experiments.Convergence(benchOptions())
	}
	for _, oc := range out {
		if oc.Scheme == "SSVC" {
			b.ReportMetric(float64(oc.ConvergenceWindows), "windowsToReservation")
			b.ReportMetric(oc.IdleUtilisation, "idleUtilisation")
		}
	}
}

// BenchmarkAblationDecoupling compares latency decoupling for a compliant
// 1% flow: original Virtual Clock vs SSVC/Reset vs the related-work CCSP.
func BenchmarkAblationDecoupling(b *testing.B) {
	var out []experiments.DecouplingOutcome
	for i := 0; i < b.N; i++ {
		out = experiments.AblationDecoupling(benchOptions())
	}
	for _, oc := range out {
		switch oc.Scheme {
		case "OriginalVC":
			b.ReportMetric(oc.LowAllocLat, "compliant1pctOrigVC")
		case "SSVC/Reset":
			b.ReportMetric(oc.LowAllocLat, "compliant1pctReset")
		case "CCSP[1]":
			b.ReportMetric(oc.LowAllocLat, "compliant1pctCCSP")
		}
	}
}

// BenchmarkAblationGSF quantifies §2.2's criticism of frame-based QoS:
// GSF matches SSVC only while its global barrier is faster than a frame
// drain; the metrics are the worst accepted/reserved ratio for SSVC, a
// fast-barrier GSF, and a slow-barrier GSF.
func BenchmarkAblationGSF(b *testing.B) {
	var out []experiments.GSFOutcome
	for i := 0; i < b.N; i++ {
		out = experiments.AblationGSF(benchOptions())
	}
	for _, oc := range out {
		switch oc.Scheme {
		case "SSVC":
			b.ReportMetric(oc.WorstRatio, "worstRatioSSVC")
		case "GSF(barrier=0)":
			b.ReportMetric(oc.WorstRatio, "worstRatioGSFfast")
		case "GSF(barrier=1024)":
			b.ReportMetric(oc.Utilisation, "utilGSFslow")
		}
	}
}

// BenchmarkComposeQoS quantifies §4.4's composition argument: per-flow
// worst accepted/reserved ratio on a single-stage SSVC switch vs a
// two-level Clos whose shared crosspoints can only hold aggregates.
func BenchmarkComposeQoS(b *testing.B) {
	var out []experiments.ComposeOutcome
	for i := 0; i < b.N; i++ {
		out = experiments.ComposeQoS(benchOptions())
	}
	for _, oc := range out {
		if oc.System == "SingleStage radix-8 SSVC" {
			b.ReportMetric(oc.PerFlowWorst, "perFlowSingleStage")
		} else {
			b.ReportMetric(oc.PerFlowWorst, "perFlowComposed")
			b.ReportMetric(oc.AggregateWorst, "aggregateComposed")
		}
	}
}

// BenchmarkAblationPVC compares preemption [7] against the paper's GL
// class for urgent traffic behind 64-flit bulk packets: PVC's urgent
// latency and its goodput cost, vs the GL class's bounded wait at zero
// waste.
func BenchmarkAblationPVC(b *testing.B) {
	var out []experiments.PVCOutcome
	for i := 0; i < b.N; i++ {
		out = experiments.AblationPVC(benchOptions())
	}
	for _, oc := range out {
		switch oc.Scheme {
		case "PVC(threshold=64)":
			b.ReportMetric(oc.UrgentMean, "urgentLatPVC")
			b.ReportMetric(oc.Goodput, "goodputPVC")
		case "SSVC+GL":
			b.ReportMetric(oc.UrgentMean, "urgentLatGL")
			b.ReportMetric(oc.Goodput, "goodputGL")
		}
	}
}
