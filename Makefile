# Standard entry points for the swizzleqos reproduction.

GO ?= go

.PHONY: all check build test race race-shard vet fmt lint benchguard bench-arb bench-shard serve-check staticcheck govulncheck bench experiments verify examples cover fuzz

all: build vet test

# Full local gate: build, vet, formatting, the in-repo invariant linter,
# tests, the race detector over the parallel sweep engine and everything
# layered on it, plus the optional linters (skipped with a notice when
# not installed).
check: build vet fmt lint staticcheck govulncheck test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sweep runner fans simulations across goroutines; keep the race
# detector on the whole module, not just the runner package.
race:
	$(GO) test -race ./...

# Dynamic counterpart of the shardsafety analyzer: the shard executor
# and the three sharded engines under the race detector with enough
# scheduler parallelism (GOMAXPROCS >= 4) that Par stages genuinely
# overlap rather than serialize on a starved runtime.
race-shard:
	GOMAXPROCS=4 $(GO) test -race -count=1 \
		./internal/shard/ ./internal/switchsim/ ./internal/mesh/ ./internal/compose/

vet:
	$(GO) vet ./...

# In-repo invariant linter (stdlib-only, see DESIGN.md "Invariants"):
# determinism, //ssvc:hotpath allocation-freedom, TxPool recycle
# discipline, and panic-freeze on engine paths. Exceptions live in
# lint.allow with a justification each.
lint:
	$(GO) run ./cmd/ssvc-lint -strict ./...

# Rerun the steady-state engine benchmarks and fail if B/op or
# allocs/op regress past the recorded "after" values. Baselines layer:
# BENCH_bitplane.json overrides BENCH_baseline.json per benchmark and
# adds the idle-regime and arbitrate-kernel benches.
benchguard:
	$(GO) run ./cmd/ssvc-benchguard

# Perf gate for the word-parallel arbitration path (BENCH_bitplane.json):
# the bitplane/scalar equivalence fuzz seed corpus, a short-benchtime
# sweep of the arbitration and cycle-loop benchmarks, then the
# allocation benchguard. Fixed iteration counts keep the sweep fast and
# its allocation columns deterministic; ns/op here is informational
# (CI hardware is too noisy to gate on time).
bench-arb:
	$(GO) test ./internal/circuit/ -run 'FuzzBitplaneEquivalence'
	$(GO) test -run='^$$' -bench='BitplaneArbitrate|SwitchCycleRecycled|SwitchCycleIdle|MeshCycleRecycled|ComposeCycleRecycled' \
		-benchmem -benchtime=10000x ./internal/core/ ./internal/switchsim/ ./internal/mesh/ ./internal/compose/
	$(GO) run ./cmd/ssvc-benchguard

# Perf gate for the sharded pipeline (BENCH_shard.json): the shard
# equivalence tests, then a short-benchtime sweep of the sharded cycle
# benchmarks with the allocation benchguard over them. As with
# bench-arb, only B/op and allocs/op gate; ns/op is informational.
bench-shard:
	$(GO) test ./internal/switchsim/ ./internal/mesh/ ./internal/compose/ -run 'Shard'
	$(GO) test -run='^$$' -bench='SwitchCycleSharded|MeshCycleSharded' \
		-benchmem -benchtime=20000x ./internal/switchsim/ ./internal/mesh/
	$(GO) run ./cmd/ssvc-benchguard

# End-to-end crash-recovery gate for the control plane: run the scripted
# ssvc-serve scenario uninterrupted, SIGKILL a paced copy mid-run and
# resume it from its journal, then replay the journal offline — all
# three delivery traces and recovered summaries must be byte-identical
# (DESIGN.md "Control plane").
serve-check:
	sh scripts/serve_check.sh

# Optional linters: run when present, skip with a notice otherwise. The
# container baseline has no network, so these must never try to install.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

# gofmt -l exits 0 even when files need formatting; fail explicitly so
# `make check` gates on formatting.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# One benchmark per paper table/figure; headline numbers as metrics.
# -run=^$ skips the unit tests so only benchmarks execute.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Regenerate every table and figure at full length (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/ssvc-bench -cycles 100000 -warmup 10000

# The paper's §4.1 wire-level verification.
verify:
	$(GO) run ./cmd/ssvc-verify -radix 4 -lanes 6 -classes
	$(GO) run ./cmd/ssvc-verify -radix 8 -lanes 16 -classes -trials 100000

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/basestation
	$(GO) run ./examples/interrupts
	$(GO) run ./examples/latencyfairness
	$(GO) run ./examples/planner

# Coverage with a floor: the build fails if total statement coverage
# drops below COVER_MIN (the tree sits comfortably above it; the floor
# catches a PR that lands a subsystem without tests).
COVER_MIN ?= 70
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk "BEGIN { exit !($$total >= $(COVER_MIN)) }" || { \
		echo "coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; \
	}

# Short fuzzing sessions for the fuzz targets.
fuzz:
	$(GO) test ./internal/core/ -fuzz FuzzSSVCGrantSequence -fuzztime 30s
	$(GO) test ./internal/core/ -fuzz FuzzThermRoundTrip -fuzztime 30s
	$(GO) test ./internal/fabric/ -fuzz FuzzBufferInvariants -fuzztime 30s
	$(GO) test ./internal/circuit/ -fuzz FuzzBitplaneEquivalence -fuzztime 30s
	$(GO) test ./cmd/ssvc-sim/ -fuzz FuzzScenarioParse -fuzztime 30s
