# Standard entry points for the swizzleqos reproduction.

GO ?= go

.PHONY: all check build test race vet fmt staticcheck govulncheck bench experiments verify examples cover fuzz

all: build vet test

# Full local gate: build, vet, formatting, tests, the race detector
# over the parallel sweep engine and everything layered on it, plus the
# optional linters (skipped with a notice when not installed).
check: build vet fmt staticcheck govulncheck test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sweep runner fans simulations across goroutines; keep the race
# detector on the whole module, not just the runner package.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Optional linters: run when present, skip with a notice otherwise. The
# container baseline has no network, so these must never try to install.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

# gofmt -l exits 0 even when files need formatting; fail explicitly so
# `make check` gates on formatting.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# One benchmark per paper table/figure; headline numbers as metrics.
# -run=^$ skips the unit tests so only benchmarks execute.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Regenerate every table and figure at full length (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/ssvc-bench -cycles 100000 -warmup 10000

# The paper's §4.1 wire-level verification.
verify:
	$(GO) run ./cmd/ssvc-verify -radix 4 -lanes 6 -classes
	$(GO) run ./cmd/ssvc-verify -radix 8 -lanes 16 -classes -trials 100000

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/basestation
	$(GO) run ./examples/interrupts
	$(GO) run ./examples/latencyfairness
	$(GO) run ./examples/planner

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

# Short fuzzing sessions for the fuzz targets.
fuzz:
	$(GO) test ./internal/core/ -fuzz FuzzSSVCGrantSequence -fuzztime 30s
	$(GO) test ./internal/core/ -fuzz FuzzThermRoundTrip -fuzztime 30s
	$(GO) test ./internal/fabric/ -fuzz FuzzBufferInvariants -fuzztime 30s
	$(GO) test ./cmd/ssvc-sim/ -fuzz FuzzScenarioParse -fuzztime 30s
